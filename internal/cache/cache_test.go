package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"autowebcache/internal/analysis"
	"autowebcache/internal/memdb"
)

func newTestCache(t *testing.T, opts Options) *Cache {
	t.Helper()
	if opts.Engine == nil {
		e, err := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
		if err != nil {
			t.Fatal(err)
		}
		opts.Engine = e
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func dep(sql string, args ...memdb.Value) analysis.Query {
	return analysis.Query{SQL: sql, Args: args}
}

func wcap(sql string, args ...memdb.Value) analysis.WriteCapture {
	return analysis.WriteCapture{Query: analysis.Query{SQL: sql, Args: args}}
}

func TestLookupMissThenHit(t *testing.T) {
	c := newTestCache(t, Options{})
	if _, ok := c.Lookup("/page?x=1"); ok {
		t.Fatal("unexpected hit")
	}
	c.Insert("/page?x=1", []byte("<html>1</html>"), "text/html", nil, 0)
	pg, ok := c.Lookup("/page?x=1")
	if !ok || string(pg.Body) != "<html>1</html>" || pg.ContentType != "text/html" {
		t.Fatalf("hit: %v %q %q", ok, pg.Body, pg.ContentType)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestLookupReturnsSharedView pins the zero-copy contract: every hit hands
// out the same stored slice the insert returned, with no per-hit copy.
func TestLookupReturnsSharedView(t *testing.T) {
	c := newTestCache(t, Options{})
	stored := c.Insert("k", []byte("abc"), "text/html", nil, 0)
	pg1, _ := c.Lookup("k")
	pg2, _ := c.Lookup("k")
	if &pg1.Body[0] != &stored.Body[0] || &pg2.Body[0] != &stored.Body[0] {
		t.Fatal("Lookup copied the body instead of returning the stored view")
	}
	if string(pg1.Body) != "abc" || pg1.ContentType != "text/html" {
		t.Fatalf("view: %q %q", pg1.Body, pg1.ContentType)
	}
}

func TestInsertCopiesBody(t *testing.T) {
	c := newTestCache(t, Options{})
	b := []byte("abc")
	c.Insert("k", b, "text/html", nil, 0)
	b[0] = 'X'
	got, _ := c.Lookup("k")
	if string(got.Body) != "abc" {
		t.Fatal("cache aliased the caller's slice")
	}
}

func TestInvalidateByWrite(t *testing.T) {
	c := newTestCache(t, Options{})
	c.Insert("/view?b=1", []byte("p1"), "text/html",
		[]analysis.Query{dep("SELECT a FROM T WHERE b = ?", int64(1))}, 0)
	c.Insert("/view?b=2", []byte("p2"), "text/html",
		[]analysis.Query{dep("SELECT a FROM T WHERE b = ?", int64(2))}, 0)

	n, err := c.InvalidateWrite(wcap("UPDATE T SET a = ? WHERE b = ?", int64(7), int64(1)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("invalidated %d pages, want 1", n)
	}
	if c.Contains("/view?b=1") {
		t.Fatal("page b=1 should be invalidated")
	}
	if !c.Contains("/view?b=2") {
		t.Fatal("page b=2 should survive")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.WritesSeen != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInvalidateSharedDependency(t *testing.T) {
	c := newTestCache(t, Options{})
	shared := dep("SELECT a FROM T WHERE b = ?", int64(1))
	c.Insert("/p1", []byte("1"), "text/html", []analysis.Query{shared}, 0)
	c.Insert("/p2", []byte("2"), "text/html", []analysis.Query{shared}, 0)
	n, err := c.InvalidateWrite(wcap("UPDATE T SET a = ? WHERE b = ?", int64(7), int64(1)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestWriteToUnrelatedTable(t *testing.T) {
	c := newTestCache(t, Options{})
	c.Insert("/p", []byte("x"), "text/html",
		[]analysis.Query{dep("SELECT a FROM T WHERE b = ?", int64(1))}, 0)
	n, err := c.InvalidateWrite(wcap("UPDATE other SET a = ? WHERE b = ?", int64(7), int64(1)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || !c.Contains("/p") {
		t.Fatalf("unrelated write invalidated the page (n=%d)", n)
	}
}

func TestPageWithMultipleDeps(t *testing.T) {
	c := newTestCache(t, Options{})
	c.Insert("/agg", []byte("x"), "text/html", []analysis.Query{
		dep("SELECT a FROM T WHERE b = ?", int64(1)),
		dep("SELECT x FROM S WHERE y = ?", int64(5)),
	}, 0)
	// A write intersecting either dependency kills the page.
	n, err := c.InvalidateWrite(wcap("UPDATE S SET x = ? WHERE y = ?", int64(1), int64(5)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	st := c.Stats()
	if st.DepTemplates != 0 || st.DepInstances != 0 {
		t.Fatalf("dependency table not cleaned: %+v", st)
	}
}

func TestReinsertReplacesEntry(t *testing.T) {
	c := newTestCache(t, Options{})
	c.Insert("/k", []byte("v1"), "text/html", []analysis.Query{dep("SELECT a FROM T WHERE b = ?", int64(1))}, 0)
	c.Insert("/k", []byte("v2"), "text/html", []analysis.Query{dep("SELECT a FROM T WHERE b = ?", int64(2))}, 0)
	pg, ok := c.Lookup("/k")
	if !ok || string(pg.Body) != "v2" {
		t.Fatalf("body: %q", pg.Body)
	}
	if c.Len() != 1 {
		t.Fatalf("len: %d", c.Len())
	}
	// Old dependency must be gone: a write on b=1 should not invalidate.
	n, err := c.InvalidateWrite(wcap("UPDATE T SET a = ? WHERE b = ?", int64(9), int64(1)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("stale dependency survived reinsert")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := newTestCache(t, Options{Clock: clock})
	c.Insert("/k", []byte("v"), "text/html", nil, 30*time.Second)
	if _, ok := c.Lookup("/k"); !ok {
		t.Fatal("expected hit before expiry")
	}
	now = now.Add(31 * time.Second)
	if _, ok := c.Lookup("/k"); ok {
		t.Fatal("expected miss after expiry")
	}
	st := c.Stats()
	if st.Expirations != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not removed")
	}
}

func TestContainsRespectsExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newTestCache(t, Options{Clock: func() time.Time { return now }})
	c.Insert("/k", []byte("v"), "text/html", nil, time.Second)
	if !c.Contains("/k") {
		t.Fatal("expected contains")
	}
	now = now.Add(2 * time.Second)
	if c.Contains("/k") {
		t.Fatal("expired entry reported as contained")
	}
}

func TestInvalidateKey(t *testing.T) {
	c := newTestCache(t, Options{})
	c.Insert("/k", []byte("v"), "text/html", nil, 0)
	if !c.InvalidateKey("/k") {
		t.Fatal("expected removal")
	}
	if c.InvalidateKey("/k") {
		t.Fatal("double removal")
	}
}

func TestFlush(t *testing.T) {
	c := newTestCache(t, Options{})
	c.Insert("/a", []byte("1"), "text/html", []analysis.Query{dep("SELECT a FROM T WHERE b = ?", int64(1))}, 0)
	c.Insert("/b", []byte("2"), "text/html", nil, 0)
	c.Flush()
	st := c.Stats()
	if st.Entries != 0 || st.DepTemplates != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
}

func TestCapacityLRU(t *testing.T) {
	c := newTestCache(t, Options{MaxEntries: 3, Replacement: LRU})
	for i := 0; i < 3; i++ {
		c.Insert(fmt.Sprintf("/p%d", i), []byte("x"), "text/html", nil, 0)
	}
	// Touch p0 so p1 becomes the LRU victim.
	if _, ok := c.Lookup("/p0"); !ok {
		t.Fatal("p0 missing")
	}
	c.Insert("/p3", []byte("x"), "text/html", nil, 0)
	if c.Contains("/p1") {
		t.Fatal("p1 should have been evicted")
	}
	if !c.Contains("/p0") || !c.Contains("/p2") || !c.Contains("/p3") {
		t.Fatal("wrong eviction victim")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCapacityFIFO(t *testing.T) {
	c := newTestCache(t, Options{MaxEntries: 3, Replacement: FIFO})
	for i := 0; i < 3; i++ {
		c.Insert(fmt.Sprintf("/p%d", i), []byte("x"), "text/html", nil, 0)
	}
	// Touching p0 must NOT save it under FIFO.
	c.Lookup("/p0")
	c.Insert("/p3", []byte("x"), "text/html", nil, 0)
	if c.Contains("/p0") {
		t.Fatal("FIFO should evict the oldest insert regardless of access")
	}
}

func TestCapacityLFU(t *testing.T) {
	c := newTestCache(t, Options{MaxEntries: 3, Replacement: LFU})
	c.Insert("/a", []byte("x"), "text/html", nil, 0)
	c.Insert("/b", []byte("x"), "text/html", nil, 0)
	c.Insert("/c", []byte("x"), "text/html", nil, 0)
	c.Lookup("/a")
	c.Lookup("/a")
	c.Lookup("/b")
	// /c has 0 hits -> victim.
	c.Insert("/d", []byte("x"), "text/html", nil, 0)
	if c.Contains("/c") {
		t.Fatal("LFU should evict the least-frequently-used entry")
	}
	if !c.Contains("/a") || !c.Contains("/b") || !c.Contains("/d") {
		t.Fatal("wrong LFU victim")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	for _, pol := range []ReplacementPolicy{LRU, LFU, FIFO} {
		c := newTestCache(t, Options{MaxEntries: 5, Replacement: pol})
		for i := 0; i < 100; i++ {
			c.Insert(fmt.Sprintf("/p%d", i%13), []byte("x"), "text/html", nil, 0)
			if c.Len() > 5 {
				t.Fatalf("%v: len %d exceeds capacity", pol, c.Len())
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	e, err := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{}); err == nil {
		t.Error("expected error for missing engine")
	}
	if _, err := New(Options{Engine: e, MaxEntries: -1}); err == nil {
		t.Error("expected error for negative capacity")
	}
	if _, err := New(Options{Engine: e, Replacement: ReplacementPolicy(99)}); err == nil {
		t.Error("expected error for bad policy")
	}
}

func TestPolicyStrings(t *testing.T) {
	if LRU.String() != "LRU" || LFU.String() != "LFU" || FIFO.String() != "FIFO" || ReplacementPolicy(0).String() != "INVALID" {
		t.Fatal("policy strings")
	}
}

func TestConcurrentCacheAccess(t *testing.T) {
	c := newTestCache(t, Options{MaxEntries: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("/p%d", (g*7+i)%40)
				if _, ok := c.Lookup(key); !ok {
					c.Insert(key, []byte("body"), "text/html",
						[]analysis.Query{dep("SELECT a FROM T WHERE b = ?", int64(i%5))}, 0)
				}
				if i%17 == 0 {
					if _, err := c.InvalidateWrite(wcap("UPDATE T SET a = ? WHERE b = ?", int64(i), int64(i%5))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDepTableTracksInstances(t *testing.T) {
	c := newTestCache(t, Options{})
	c.Insert("/p1", []byte("1"), "text/html", []analysis.Query{dep("SELECT a FROM T WHERE b = ?", int64(1))}, 0)
	c.Insert("/p2", []byte("2"), "text/html", []analysis.Query{dep("SELECT a FROM T WHERE b = ?", int64(2))}, 0)
	st := c.Stats()
	if st.DepTemplates != 1 {
		t.Fatalf("templates: %d", st.DepTemplates)
	}
	if st.DepInstances != 2 {
		t.Fatalf("instances: %d", st.DepInstances)
	}
}
