package cache

import (
	"fmt"
	"testing"
)

// TestSegmentStats checks the per-segment occupancy and eviction split the
// telemetry layer exports: inserts land in probation, a first hit moves the
// entry (and its bytes) to protected, and eviction under pressure drains
// probation first and is attributed to the right segment.
func TestSegmentStats(t *testing.T) {
	c := governedCache(t, Options{MaxBytes: 16 << 10})

	body := make([]byte, 1024)
	c.Insert("/a", body, "text/html", depOn(1), 0)
	c.Insert("/b", body, "text/html", depOn(2), 0)

	st := c.Snapshot()
	if st.ProbationEntries != 2 || st.ProtectedEntries != 0 {
		t.Fatalf("after inserts: probation=%d protected=%d", st.ProbationEntries, st.ProtectedEntries)
	}
	if st.ProbationBytes != st.Bytes || st.ProtectedBytes != 0 {
		t.Fatalf("after inserts: probation bytes %d (total %d), protected %d",
			st.ProbationBytes, st.Bytes, st.ProtectedBytes)
	}

	// First hit promotes /a — entry count and bytes move segments.
	if _, ok := c.Lookup("/a"); !ok {
		t.Fatal("lookup /a missed")
	}
	st = c.Snapshot()
	if st.ProbationEntries != 1 || st.ProtectedEntries != 1 {
		t.Fatalf("after promote: probation=%d protected=%d", st.ProbationEntries, st.ProtectedEntries)
	}
	wantProt := entryCost("/a", body, depOn(1))
	if st.ProtectedBytes != wantProt {
		t.Fatalf("protected bytes = %d, want %d", st.ProtectedBytes, wantProt)
	}
	if st.ProbationBytes+st.ProtectedBytes != st.Bytes {
		t.Fatalf("segment bytes %d+%d != total %d", st.ProbationBytes, st.ProtectedBytes, st.Bytes)
	}

	// A second hit must not move bytes again (promotion is one-time).
	c.Lookup("/a")
	if st2 := c.Snapshot(); st2.ProtectedBytes != wantProt {
		t.Fatalf("protected bytes after re-hit = %d, want %d", st2.ProtectedBytes, wantProt)
	}

	// Removal from the protected segment credits its counter.
	c.InvalidateKey("/a")
	st = c.Snapshot()
	if st.ProtectedEntries != 0 || st.ProtectedBytes != 0 {
		t.Fatalf("after invalidate: protected entries=%d bytes=%d", st.ProtectedEntries, st.ProtectedBytes)
	}
}

// TestSegmentEvictionSplit fills a tiny governed cache with one protected
// page and churns one-hit inserts: the churn must evict from probation, and
// the split counters must attribute every eviction to a segment.
func TestSegmentEvictionSplit(t *testing.T) {
	c := governedCache(t, Options{MaxBytes: 8 << 10, Shards: 1})
	body := make([]byte, 1024)

	c.Insert("/hot", body, "text/html", depOn(0), 0)
	c.Lookup("/hot") // promote

	for i := 0; i < 64; i++ {
		c.Insert(fmt.Sprintf("/cold-%d", i), body, "text/html", depOn(i+1), 0)
	}

	st := c.Snapshot()
	if st.Evictions == 0 {
		t.Fatal("churn produced no evictions")
	}
	if st.EvictionsProbation+st.EvictionsProtected != st.Evictions {
		t.Fatalf("eviction split %d+%d != total %d",
			st.EvictionsProbation, st.EvictionsProtected, st.Evictions)
	}
	if st.EvictionsProbation == 0 {
		t.Fatal("one-hit churn must evict from probation")
	}
	// The protected page survived the probation churn.
	if _, ok := c.Lookup("/hot"); !ok {
		t.Fatal("protected page was evicted by one-hit churn")
	}
}
