// Package cache implements AutoWebCache's core page cache (§3.1, Fig. 3):
//
//   - a page table mapping request URIs (including arguments) to cached web
//     pages, and
//   - a dependency table mapping each read-query template to the (value
//     vector, page key) pairs that used it,
//
// plus the consistency machinery of §3.2: on a write, the query-analysis
// engine decides which cached read instances the write intersects, and the
// pages depending on them are invalidated.
//
// Beyond the paper's core, the package implements the extensions its §9
// lists as future work: bounded capacity with pluggable replacement policies
// (LRU, LFU, FIFO) and time-lagged (TTL) weak consistency, which also
// realises the TPC-W BestSellers 30-second semantic window of §4.3.
//
// Both tables are lock-striped: the page table over power-of-two shards
// keyed by an FNV hash of the page key, and the dependency table over
// shards keyed by a hash of the read-query template, so concurrent lookups
// and inserts on distinct keys never contend and a write only locks the
// dependency shards it scans, one at a time. Counters are atomics. The
// paper's strong-consistency contract is preserved: InvalidateWrite returns
// only after every dependent page fully inserted before the call has been
// removed, so the writer's response is released strictly after the
// invalidation (§3.2). Lock order is always page shard -> dependency shard,
// never the reverse, and no two shards of the same stripe are held at once.
package cache

import (
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autowebcache/internal/analysis"
	"autowebcache/internal/cache/l2"
	"autowebcache/internal/datasource"
	"autowebcache/internal/stripe"
	"autowebcache/internal/tinylfu"
)

// ReplacementPolicy selects the eviction order under bounded capacity.
type ReplacementPolicy int

// Replacement policies. Start at 1 so the zero value selects the default in
// Options (LRU).
const (
	LRU ReplacementPolicy = iota + 1
	LFU
	FIFO
)

func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case LFU:
		return "LFU"
	case FIFO:
		return "FIFO"
	}
	return "INVALID"
}

// Options configures a Cache.
type Options struct {
	// Engine decides read/write intersections. Required.
	Engine *analysis.Engine
	// MaxEntries bounds the number of cached pages; 0 means unbounded.
	MaxEntries int
	// MaxBytes bounds the accounted memory of cached pages — body, key and
	// dependency overhead, charged at Insert and credited at removal; 0
	// means unbounded. Unlike MaxEntries it tracks actual payload size, so a
	// handful of multi-megabyte pages cannot blow the heap while the entry
	// count reads as healthy. Both bounds may be set; an insert must satisfy
	// both. A single page costing more than MaxBytes is served to its
	// requester but never cached.
	//
	// Setting MaxBytes also enables segmented (probation/protected)
	// eviction: new pages start on probation and are promoted on their first
	// hit; under pressure, probation pages are evicted before protected
	// ones, so a burst of one-hit inserts cannot flush the proven working
	// set. Within each segment the configured Replacement policy keeps its
	// exact cross-shard victim order. (FIFO ignores segmentation: it has no
	// notion of reuse to promote on.)
	MaxBytes int64
	// Admission additionally gates inserts under byte-budget pressure with a
	// TinyLFU filter: when the cache is at MaxBytes, a candidate page is
	// admitted — evicting the replacement victim — only if its estimated
	// request frequency strictly beats the victim's. One-hit wonders are
	// rejected (still served, just not cached) instead of displacing hot
	// pages. Requires MaxBytes > 0.
	Admission bool
	// Replacement selects the eviction policy when MaxEntries is exceeded.
	// Defaults to LRU.
	Replacement ReplacementPolicy
	// Shards is the lock-stripe count for the page and dependency tables,
	// rounded up to a power of two. 0 picks GOMAXPROCS rounded likewise.
	Shards int
	// Clock supplies the current time; defaults to time.Now. Injectable for
	// deterministic TTL tests.
	Clock func() time.Time
	// ForceMiss makes every Lookup miss while leaving inserts and
	// invalidations in place. The paper uses this mode to measure the
	// cache-lookup overhead (§6, Fig. 14 discussion: "forcing a cache miss
	// on every lookup... the performance difference to NoCache is
	// negligible").
	ForceMiss bool
	// Gzip builds a gzip content-encoding variant for each inserted page at
	// insert time — compressed exactly once per generation, byte-accounted
	// with its entry, sharing the entry's deps/TTL/epoch lifecycle — for the
	// serve layer to negotiate per request from Accept-Encoding. Variants
	// that would not shrink the body are discarded (identity only).
	Gzip bool
	// GzipMinBytes is the smallest body a gzip variant is built for; 0
	// means defaultGzipMinBytes. Only meaningful with Gzip set.
	GzipMinBytes int
	// ETags precomputes a strong, content-derived validator per entry at
	// insert so conditional requests (If-None-Match) on hits are answered
	// 304 straight from the cache with zero body bytes.
	ETags bool
	// L2, when set, attaches a disk tier under the byte-budgeted L1:
	// eviction demotes entries (body, deps, remaining TTL) into the store
	// instead of discarding them, an L1 miss probes the store and promotes
	// a hit back, and InvalidateWrite/Flush sweep both tiers before
	// returning, so the §3.2 contract holds for disk-resident pages too.
	// The dependency table stays the single source of truth across tiers.
	// The cache takes ownership of the store: Close spills resident pages
	// into it and closes it.
	L2 *l2.Store
}

// Page is the caller-facing view of one cached page: the stored body slice
// and content type, handed out by reference.
//
// Ownership contract: the body is copied exactly once, at Insert, and is
// immutable from then on. Lookup returns the stored slice itself — no
// per-hit copy — so callers must treat Page.Body as read-only. Mutating it
// is a data race and corrupts the cache for every later reader. Entries are
// only ever removed whole (invalidation, eviction, expiry, flush), never
// rewritten in place, so views returned before a removal stay valid and
// self-consistent for as long as the caller holds them.
type Page struct {
	Body        []byte
	ContentType string
	// Gzip is the entry's gzip content-encoding variant, compressed exactly
	// once at insert; nil when absent (Options.Gzip off, the body below
	// GzipMinBytes, or compression did not shrink it). Same shared
	// read-only contract as Body.
	Gzip []byte
	// ETag is the entry's strong validator, precomputed at insert
	// (RFC 7232 quoted form); "" when Options.ETags is off.
	ETag string
	// BodyLen and GzipLen are the decimal renderings of len(Body) and
	// len(Gzip), precomputed at insert so the serve path can set
	// Content-Length without a per-request allocation. "" when variant
	// metadata is off (both Options.Gzip and Options.ETags unset).
	BodyLen string
	GzipLen string
}

// Entry is one cached page together with its dependency information.
type Entry struct {
	Key         string
	Body        []byte
	ContentType string
	// Deps are the read-query instances whose results the page was
	// generated from (template + value vector, §3.1 "dependency info").
	Deps       []analysis.Query
	InsertedAt time.Time
	// ExpiresAt, when non-zero, makes the entry invisible after this time —
	// used for TTL (weak) consistency and semantic windows.
	ExpiresAt time.Time
	// Gzip and ETag are the serve-path variants built once at insert (see
	// variants.go); immutable like Body for the entry's lifetime.
	Gzip []byte
	ETag string

	// bodyLen / gzipLen are the precomputed Content-Length strings of the
	// identity and gzip representations ("" when variants are off).
	bodyLen string
	gzipLen string

	hits uint64
	// seq is the entry's position in the global replacement order: assigned
	// from the cache-wide sequence at insert, and refreshed on every hit
	// under LRU. The globally-minimal seq is the LRU/FIFO victim, and the
	// LFU tie-break, even though each shard keeps its own list.
	seq uint64
	// cost is the entry's accounted size in bytes (see entryCost), charged
	// against Options.MaxBytes for the entry's lifetime.
	cost int64
	// protected marks the entry's segment under byte governance: false =
	// probation (new insert, first eviction tier), true = protected
	// (promoted on first hit, evicted only when probation is empty).
	protected bool
	// l2lsn, when non-zero, is the LSN of the disk-tier record this entry
	// was promoted from. If the record is still current at demotion time
	// the body need not be rewritten to disk.
	l2lsn uint64
}

// Accounted per-entry overheads, approximating the Go-side cost of the maps,
// list elements and struct headers an entry occupies beyond its payload.
const (
	entryOverhead = 160 // Entry struct + page-table slot + list element
	depOverhead   = 96  // dependency-table instance + probe-index slots
)

// entryCost is the accounted byte size of one cached page: the body and key
// payloads plus the dependency information (template text and value vector)
// and fixed bookkeeping overheads.
func entryCost(key string, body []byte, deps []analysis.Query) int64 {
	cost := int64(entryOverhead) + int64(len(key)) + int64(len(body))
	for _, d := range deps {
		cost += depOverhead + int64(len(d.SQL)) + 16*int64(len(d.Args))
		for _, a := range d.Args {
			if s, ok := a.(string); ok {
				cost += int64(len(s))
			}
		}
	}
	return cost
}

// View is an exported snapshot of one cached entry for the cluster peer
// protocol: the page plus the dependency information and remaining
// freshness window a fetching node needs to insert a locally-invalidatable
// replica. Body and Deps are the stored slices shared by reference — both
// are immutable for the entry's lifetime and beyond (entries are removed
// whole, never rewritten), so holding a View across a removal is safe; the
// holder must treat them as read-only.
type View struct {
	Page
	// Deps are the read-query instances the page depends on (shared).
	Deps []analysis.Query
	// TTL is the remaining freshness window; 0 means the entry lives until
	// invalidated or evicted.
	TTL time.Duration
}

// RemoteInvalidator receives the cache's write-invalidation traffic for
// fan-out to cluster peers (§3.2 applied cluster-wide). In strong mode the
// implementation returns only after every reachable peer has applied the
// invalidation, so InvalidateWrite keeps its contract — the writer's
// response is released strictly after all dependent pages, anywhere in the
// cluster, are gone. An async implementation returns immediately
// (best-effort, time-lagged — the weak-consistency trade of §8).
type RemoteInvalidator interface {
	// BroadcastWrite forwards a locally applied write capture to peers.
	// A nil return does not always mean every peer applied it: lenient
	// implementations count unreachable peers and rely on quarantine-on-
	// rejoin instead. A strict implementation returns an error wrapping
	// ErrPeerUnreachable naming the peers that missed the broadcast — by
	// then the local invalidation and every reachable peer's have already
	// been applied.
	BroadcastWrite(w analysis.WriteCapture) error
	// BroadcastFlush forwards a full cache flush to peers, with the same
	// error contract as BroadcastWrite.
	BroadcastFlush() error
}

// ErrPeerUnreachable marks an invalidation broadcast that could not reach
// every peer. It lives here — not in the cluster package — so the weave
// layer can errors.Is a degraded write without importing the cluster.
// When a returned error wraps it, the write's local invalidation has
// succeeded; re-flushing locally would not help the unreachable peers
// (they quarantine-flush on rejoin), so callers should surface the
// degradation rather than retry or flush.
var ErrPeerUnreachable = errors.New("peer unreachable during invalidation broadcast")

// remoteBox wraps the interface for atomic.Value (which needs a consistent
// concrete type).
type remoteBox struct{ r RemoteInvalidator }

// Stats are cumulative cache counters.
type Stats struct {
	Hits             uint64
	Misses           uint64
	Inserts          uint64
	Invalidations    uint64 // pages removed by write invalidation
	Evictions        uint64 // pages removed by capacity pressure
	Expirations      uint64 // pages removed because their TTL passed
	WritesSeen       uint64 // InvalidateWrite calls
	AdmissionRejects uint64 // inserts refused by the TinyLFU admission filter
	OversizeRejects  uint64 // inserts refused because one entry exceeds MaxBytes
	// GzipCompressions counts gzip compressor runs — exactly one per
	// variant-building insert, never per request (the once-per-insert
	// contract of Options.Gzip).
	GzipCompressions uint64
	Entries          int // current page count
	DepTemplates     int // current dependency-table template count
	DepInstances     int // current dependency-table (template, vector) count
	// Bytes is the accounted memory charged against MaxBytes: every linked
	// entry's cost plus in-flight insert reservations. With MaxBytes set it
	// never exceeds the budget.
	Bytes int64
	// VariantBytes is the resident gzip-variant payload (a subset of
	// Bytes): what the content-encoding variants currently cost on top of
	// the identity bodies.
	VariantBytes int64

	// Tier-movement counters, non-zero only with an attached L2 store.
	Demotions     uint64 // evictions that landed in the disk tier instead of discarding
	Promotions    uint64 // disk-tier hits admitted back into L1
	PromoteAborts uint64 // promotions abandoned because an invalidation raced them
	// L2 is the attached disk tier's own counters (zero without one).
	L2 l2.Stats

	// Per-segment occupancy and eviction splits. Under segmented eviction
	// (byte governance with LRU/LFU) entries start in probation and move to
	// protected on first reuse; an unsegmented cache reports everything as
	// probation. A growing EvictionsProtected with a cold probation segment
	// is the operator's signal that MaxBytes is undersized for the working
	// set (see docs/OPERATIONS.md).
	ProbationEntries   int
	ProtectedEntries   int
	ProbationBytes     int64 // linked entry cost only (reservations excluded)
	ProtectedBytes     int64
	EvictionsProbation uint64
	EvictionsProtected uint64
}

// depInstance is one row of the dependency table's value-vector level: a
// concrete read-query instance and the pages built from it.
type depInstance struct {
	query analysis.Query
	pages map[string]bool
}

// depTemplate groups the instances of one read-query template, with a probe
// index per table: instances keyed by the value their `table.col = ?`
// predicate binds. A write whose effect on that column is bounded only
// needs to test the matching instances — the result-caching optimisation
// the paper relies on for near-zero run-time analysis overhead (§7).
type depTemplate struct {
	info      *analysis.TemplateInfo // nil when the template is unparseable
	instances map[string]*depInstance
	// probeIdx: table -> probe key -> argsKey -> instance.
	probeIdx map[string]map[string]map[string]*depInstance
}

func newDepTemplate(info *analysis.TemplateInfo) *depTemplate {
	return &depTemplate{
		info:      info,
		instances: make(map[string]*depInstance),
		probeIdx:  make(map[string]map[string]map[string]*depInstance),
	}
}

// probeKeyFor returns the probe key of an instance for one table's probe,
// or ok=false when the instance has no value at the probed argument.
func probeKeyFor(p analysis.Probe, args []datasource.Value) (string, bool) {
	if p.ArgIndex < 0 || p.ArgIndex >= len(args) {
		return "", false
	}
	return analysis.ProbeKey(args[p.ArgIndex]), true
}

// addInstance registers an instance in the probe indexes.
func (dt *depTemplate) addInstance(argsKey string, inst *depInstance) {
	dt.instances[argsKey] = inst
	if dt.info == nil {
		return
	}
	for table, p := range dt.info.Probes {
		key, ok := probeKeyFor(p, inst.query.Args)
		if !ok {
			continue
		}
		byKey := dt.probeIdx[table]
		if byKey == nil {
			byKey = make(map[string]map[string]*depInstance)
			dt.probeIdx[table] = byKey
		}
		byArgs := byKey[key]
		if byArgs == nil {
			byArgs = make(map[string]*depInstance)
			byKey[key] = byArgs
		}
		byArgs[argsKey] = inst
	}
}

// removeInstance unregisters an instance from the probe indexes.
func (dt *depTemplate) removeInstance(argsKey string, inst *depInstance) {
	delete(dt.instances, argsKey)
	if dt.info == nil {
		return
	}
	for table, p := range dt.info.Probes {
		key, ok := probeKeyFor(p, inst.query.Args)
		if !ok {
			continue
		}
		if byArgs := dt.probeIdx[table][key]; byArgs != nil {
			delete(byArgs, argsKey)
			if len(byArgs) == 0 {
				delete(dt.probeIdx[table], key)
			}
		}
	}
}

// pageShard is one stripe of the page table with its replacement lists.
type pageShard struct {
	mu    sync.Mutex
	pages map[string]*list.Element // key -> element holding *Entry
	order *list.List               // probation segment: front = next victim
	// prot is the protected segment, populated only under byte governance:
	// entries move here on their first hit and are evicted only when every
	// probation segment is empty.
	prot *list.List
	// bytes is this shard's share of the accounted memory: the summed cost
	// of the entries currently linked into the shard (in-flight insert
	// reservations are carried by the cache-wide counter only); protBytes
	// is the subset linked into the protected segment.
	bytes     atomic.Int64
	protBytes atomic.Int64
}

// depShard is one stripe of the dependency table.
type depShard struct {
	mu sync.Mutex
	// deps: template SQL -> template group (instances + probe indexes).
	deps map[string]*depTemplate
}

// Cache is the page cache. It is safe for concurrent use.
type Cache struct {
	opts Options
	mask uint32 // shard count - 1 (power of two)

	pageShards []pageShard
	depShards  []depShard

	// seq orders entries globally for replacement; entries counts pages
	// across all shards (including slots reserved by in-flight inserts),
	// so the MaxEntries bound is never exceeded.
	seq     atomic.Uint64
	entries atomic.Int64

	// bytesUsed is the byte-budget authority: the summed cost of linked
	// entries plus in-flight insert reservations, CAS-reserved before an
	// entry is built into the tables so the MaxBytes bound is never
	// exceeded, even transiently.
	bytesUsed atomic.Int64

	// epoch counts invalidation events (write invalidations and flushes,
	// local or peer-applied). It is bumped BEFORE the sweep starts, so an
	// inserter that observes an unchanged epoch across its generate+insert
	// window knows no sweep it could have raced has run yet — any later
	// sweep will see the inserted entry. The weave's single-flight uses this
	// to keep the §3.2 guarantee across the insert-after-read window: a
	// page (or fragment) inserted while an invalidation swept is discarded
	// instead of shared.
	epoch atomic.Uint64

	// recent retains the prepared write behind each recent epoch (nil for a
	// flush) so StaleSince can test an inserter's dependency set against
	// exactly the sweeps that raced its window, instead of discarding on
	// every concurrent write.
	recentMu sync.Mutex
	recent   [recentWriteWindow]recentWrite

	// admit is the TinyLFU admission filter (nil unless Options.Admission):
	// touched on every lookup, consulted when a reservation needs to evict.
	admit *tinylfu.Filter

	// gzipCompressions counts compressor runs (once per variant-building
	// insert); variantBytes tracks resident gzip payload, added when an
	// entry links and credited when it unlinks.
	gzipCompressions atomic.Uint64
	variantBytes     atomic.Int64

	hits             atomic.Uint64
	misses           atomic.Uint64
	inserts          atomic.Uint64
	invalidations    atomic.Uint64
	evictions        atomic.Uint64
	evictionsProt    atomic.Uint64 // subset of evictions taken from the protected segment
	expirations      atomic.Uint64
	writesSeen       atomic.Uint64
	admissionRejects atomic.Uint64
	oversizeRejects  atomic.Uint64
	demotions        atomic.Uint64
	promotions       atomic.Uint64
	promoteAborts    atomic.Uint64
	// flushing counts in-progress FlushLocal sweeps. While it is non-zero,
	// evictions discard instead of demoting and promotions abort instead of
	// linking: either could otherwise carry a pre-flush page across the gap
	// between the L1 sweep and the store flush and resurrect it after the
	// flush has returned.
	flushing atomic.Int32

	// remote, when set, fans invalidation traffic out to cluster peers.
	remote atomic.Value // remoteBox
}

// New creates a cache. Options.Engine must be set.
func New(opts Options) (*Cache, error) {
	if opts.Engine == nil {
		return nil, fmt.Errorf("cache: Options.Engine is required")
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Replacement == 0 {
		opts.Replacement = LRU
	}
	switch opts.Replacement {
	case LRU, LFU, FIFO:
	default:
		return nil, fmt.Errorf("cache: invalid replacement policy %d", int(opts.Replacement))
	}
	if opts.MaxEntries < 0 {
		return nil, fmt.Errorf("cache: negative MaxEntries")
	}
	if opts.MaxBytes < 0 {
		return nil, fmt.Errorf("cache: negative MaxBytes")
	}
	if opts.Admission && opts.MaxBytes <= 0 {
		return nil, fmt.Errorf("cache: Admission requires MaxBytes (the filter gates byte-budget pressure)")
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("cache: negative Shards")
	}
	n := stripe.Count(opts.Shards)
	c := &Cache{
		opts:       opts,
		mask:       uint32(n - 1),
		pageShards: make([]pageShard, n),
		depShards:  make([]depShard, n),
	}
	if opts.Admission {
		c.admit = tinylfu.New(admissionCounters(opts))
	}
	for i := range c.pageShards {
		c.pageShards[i].pages = make(map[string]*list.Element)
		c.pageShards[i].order = list.New()
		c.pageShards[i].prot = list.New()
	}
	for i := range c.depShards {
		c.depShards[i].deps = make(map[string]*depTemplate)
	}
	if opts.L2 != nil {
		// Rebuild the dependency links for disk-resident pages restored by
		// the store's warm boot, so a write arriving before any promotion
		// still finds and invalidates them. New() is single-threaded, so
		// taking dependency shard locks directly is safe here.
		opts.L2.Range(func(key string, deps []analysis.Query) {
			for _, d := range deps {
				c.addDepLocked(d, key)
			}
		})
	}
	return c, nil
}

// admissionCounters sizes the TinyLFU filter: track roughly as many keys as
// the governed cache can plausibly hold, assuming a small page when only the
// byte bound is known.
func admissionCounters(opts Options) int {
	if opts.MaxEntries > 0 {
		return opts.MaxEntries
	}
	const assumedPage = 4096
	return int(min(opts.MaxBytes/assumedPage, 1<<20))
}

// segmented reports whether probation/protected eviction is active: byte
// governance is on and the policy has a notion of reuse to promote on.
func (c *Cache) segmented() bool {
	return c.opts.MaxBytes > 0 && c.opts.Replacement != FIFO
}

func (c *Cache) pageShard(key string) *pageShard {
	return &c.pageShards[stripe.Hash(key)&c.mask]
}

func (c *Cache) depShard(tmpl string) *depShard {
	return &c.depShards[stripe.Hash(tmpl)&c.mask]
}

// Engine returns the cache's analysis engine.
func (c *Cache) Engine() *analysis.Engine { return c.opts.Engine }

// ForceMiss reports whether the cache is in the forced-miss measurement
// mode (every Lookup misses). Interposition layers use it to disable
// optimisations — like single-flight miss coalescing — that would skip the
// handler executions the mode exists to measure.
func (c *Cache) ForceMiss() bool { return c.opts.ForceMiss }

// Shards returns the lock-stripe count.
func (c *Cache) Shards() int { return len(c.pageShards) }

// SetRemote attaches the cluster peer tier: from now on InvalidateWrite and
// Flush also broadcast to peers (a nil r detaches). Peers applying a
// received broadcast must use InvalidateWriteLocal / FlushLocal, or the
// invalidation would echo around the cluster forever.
func (c *Cache) SetRemote(r RemoteInvalidator) {
	c.remote.Store(remoteBox{r: r})
}

// loadRemote returns the attached peer tier, or nil.
func (c *Cache) loadRemote() RemoteInvalidator {
	if b, ok := c.remote.Load().(remoteBox); ok {
		return b.r
	}
	return nil
}

// hitEntry is the shared hit path behind Lookup and Export: find the live
// entry, expire it if its TTL passed, bump the hit count and recency, and
// maintain the counters. The returned entry is read-only for the caller —
// its Body, ContentType, Deps and ExpiresAt are immutable after insert, so
// reading them outside the shard lock is safe.
func (c *Cache) hitEntry(key string) (*Entry, bool) {
	// Every lookup — hit or miss — feeds the admission filter's frequency
	// estimate, so a page's popularity is known before it is ever inserted.
	if c.admit != nil {
		c.admit.Touch(tinylfu.HashString(key))
	}
	now := c.opts.Clock()
	s := c.pageShard(key)
	s.mu.Lock()
	el, present := s.pages[key]
	if !present || c.opts.ForceMiss {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*Entry)
	if !e.ExpiresAt.IsZero() && now.After(e.ExpiresAt) {
		c.removeEntryLocked(s, el)
		s.mu.Unlock()
		c.expirations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	e.hits++
	// Recency only matters when eviction can happen; on an unbounded cache
	// the list order is never consulted, so skip the global-sequence tick.
	evictable := c.opts.MaxEntries > 0 || c.opts.MaxBytes > 0
	if c.segmented() && !e.protected {
		// First reuse: promote out of probation. The new list element is a
		// one-time cost per entry; steady-state hits stay allocation-free.
		s.order.Remove(el)
		el = s.prot.PushBack(e)
		s.pages[key] = el
		e.protected = true
		s.protBytes.Add(e.cost)
		if c.opts.Replacement == LRU {
			e.seq = c.seq.Add(1)
		}
	} else if c.opts.Replacement == LRU && evictable {
		if e.protected {
			s.prot.MoveToBack(el)
		} else {
			s.order.MoveToBack(el)
		}
		e.seq = c.seq.Add(1)
	}
	s.mu.Unlock()
	c.hits.Add(1)
	return e, true
}

// Lookup returns the cached page for key, if present and not expired
// (§3.1 "cache checks"). The returned Page is a zero-copy view of the
// stored entry: its body is shared and immutable (see Page), so the hit
// path performs no allocation.
func (c *Cache) Lookup(key string) (Page, bool) {
	e, ok := c.lookupEntry(key)
	if !ok {
		return Page{}, false
	}
	return e.page(), true
}

// lookupEntry is hitEntry extended with the disk tier: an L1 miss probes
// L2 and promotes a hit back into L1 (see promote). The L1 hit path is
// untouched — with or without a store attached it stays allocation-free.
// A promoted serve still counts as an L1 miss; the store's own hit counter
// records the tier that answered.
func (c *Cache) lookupEntry(key string) (*Entry, bool) {
	e, ok := c.hitEntry(key)
	if !ok && c.opts.L2 != nil && !c.opts.ForceMiss {
		return c.promote(key)
	}
	return e, ok
}

// page is the zero-copy caller-facing view of the entry, variants included.
func (e *Entry) page() Page {
	return Page{
		Body:        e.Body,
		ContentType: e.ContentType,
		Gzip:        e.Gzip,
		ETag:        e.ETag,
		BodyLen:     e.bodyLen,
		GzipLen:     e.gzipLen,
	}
}

// Export returns the full stored entry for key — page, dependency info and
// remaining TTL — for serving a cluster peer's fetch. It counts as a hit
// (a remote fetch is a read of this node's cache) and refreshes recency
// like Lookup. The returned View shares the stored immutable slices; see
// View for the ownership contract.
func (c *Cache) Export(key string) (View, bool) {
	e, ok := c.lookupEntry(key)
	if !ok {
		return View{}, false
	}
	v := View{Page: e.page(), Deps: e.Deps}
	if !e.ExpiresAt.IsZero() {
		v.TTL = e.ExpiresAt.Sub(c.opts.Clock())
	}
	return v, true
}

// Insert stores a page with its dependency information (§3.1 "cache
// inserts"). ttl > 0 arms an expiry (TTL consistency / semantic windows);
// ttl == 0 means the entry lives until invalidated or evicted.
//
// The body is copied exactly once, here; the stored copy is what every
// later Lookup hands out by reference, and Insert returns the same
// immutable view so the inserting request can serve (or share) the stored
// bytes without a second copy. The cache takes ownership of deps — the
// caller must not retain or mutate the slice (or its Args vectors) after
// the call.
//
// Under byte governance the insert may be refused — the page is oversize,
// or the admission filter sides with the eviction victim. The returned
// view is still immutable and servable either way; callers that need to
// know use TryInsert.
func (c *Cache) Insert(key string, body []byte, contentType string, deps []analysis.Query, ttl time.Duration) Page {
	pg, _ := c.TryInsert(key, body, contentType, deps, ttl)
	return pg
}

// TryInsert is Insert reporting whether the page was actually stored.
// stored=false means the byte budget refused it: the entry costs more than
// MaxBytes, or the admission filter judged it colder than every eviction
// victim it would displace. The returned Page wraps this call's private
// immutable copy of body in that case, so it is servable and shareable
// regardless — the page just will not be found by later lookups. (The
// cluster tier uses the flag to refuse replica offers it has no room for.)
func (c *Cache) TryInsert(key string, body []byte, contentType string, deps []analysis.Query, ttl time.Duration) (Page, bool) {
	now := c.opts.Clock()
	e := &Entry{
		Key:         key,
		Body:        append([]byte(nil), body...),
		ContentType: contentType,
		Deps:        deps,
		InsertedAt:  now,
	}
	// Variants are built on the private copy before costing, so the gzip
	// payload and validator strings are charged against MaxBytes with the
	// rest of the entry.
	c.buildVariants(e)
	e.cost = entryCost(key, body, deps) + variantCost(e)
	if ttl > 0 {
		e.ExpiresAt = now.Add(ttl)
	}
	stored := e.page()
	s := c.pageShard(key)
	// Replacing a resident key happens atomically under the shard lock,
	// reusing the old entry's capacity slot AND its byte budget: only the
	// cost delta is charged (before the old entry is unlinked, so at no
	// instant is the key's budget released for a concurrent reservation to
	// steal), the page never transiently vanishes for concurrent lookups,
	// and a same-size regeneration at full budget needs no eviction, no
	// admission duel, no innocent victim.
	s.mu.Lock()
	if old, exists := s.pages[key]; exists {
		delta := e.cost - old.Value.(*Entry).cost
		if delta <= 0 || c.chargeBytes(delta) {
			c.unlinkEntryLocked(s, old)
			if delta < 0 {
				c.bytesUsed.Add(delta)
			}
			c.insertEntryLocked(s, e)
			c.dropStaleL2Locked(key)
			s.mu.Unlock()
			c.inserts.Add(1)
			return stored, true
		}
		// The replacement outgrows the resident entry plus the free budget
		// and needs eviction (or is oversize): release the old entry and
		// its slot, then take the slow path. The old entry staying gone is
		// correct — it held the content this call is replacing.
		c.detachEntryLocked(s, old)
		c.entries.Add(-1)
	}
	s.mu.Unlock()
	// Slow path: the byte reservation happens before any table is touched,
	// so the accounted total can never exceed MaxBytes, even transiently.
	if !c.reserveBytes(e.cost, key) {
		return stored, false
	}
	c.reserveSlot()
	s.mu.Lock()
	if cur, exists := s.pages[key]; exists {
		// A concurrent insert of the same key won the race; take over its
		// slot and give back the one we reserved.
		c.detachEntryLocked(s, cur)
		c.entries.Add(-1)
	}
	c.insertEntryLocked(s, e)
	c.dropStaleL2Locked(key)
	s.mu.Unlock()
	c.inserts.Add(1)
	return stored, true
}

// chargeBytes claims cost bytes of the budget only if they fit without
// eviction, reporting success. Safe to call while holding a shard lock —
// it touches nothing but the atomic counter (unlike reserveBytes, whose
// eviction scan locks shards).
func (c *Cache) chargeBytes(cost int64) bool {
	max := c.opts.MaxBytes
	if max <= 0 {
		c.bytesUsed.Add(cost)
		return true
	}
	for {
		n := c.bytesUsed.Load()
		if n+cost > max {
			return false
		}
		if c.bytesUsed.CompareAndSwap(n, n+cost) {
			return true
		}
	}
}

// insertEntryLocked links a fully-built entry (whose capacity slot and byte
// cost are already accounted) into the shard and the dependency table. New
// entries always start in the probation segment. The caller holds s.mu.
func (c *Cache) insertEntryLocked(s *pageShard, e *Entry) {
	e.seq = c.seq.Add(1)
	s.pages[e.Key] = s.order.PushBack(e)
	s.bytes.Add(e.cost)
	if e.Gzip != nil {
		c.variantBytes.Add(int64(len(e.Gzip)))
	}
	for _, d := range e.Deps {
		c.addDepLocked(d, e.Key)
	}
}

// reserveSlot claims one unit of capacity, evicting until a slot is free.
// The claimed unit is released by removeEntryLocked when the entry (or, on
// a replacement race, its predecessor) is removed.
func (c *Cache) reserveSlot() {
	max := int64(c.opts.MaxEntries)
	if max <= 0 {
		c.entries.Add(1)
		return
	}
	for {
		n := c.entries.Load()
		if n < max {
			if c.entries.CompareAndSwap(n, n+1) {
				return
			}
			continue
		}
		if !c.evictOne() {
			// Every slot is reserved by an in-flight insert; let them land.
			runtime.Gosched()
		}
	}
}

// reserveBytes claims cost bytes of the MaxBytes budget for key's entry,
// evicting replacement victims until the reservation fits. The CAS reserve
// happens before the entry touches any table, so the accounted total never
// exceeds the budget, even transiently. It returns false — and holds no
// reservation — when the entry can never fit (cost > MaxBytes) or when the
// admission filter sides with a victim: the candidate must beat every
// victim it would displace, so one-hit wonders cannot churn the hot set.
// The claimed bytes are credited back by detachEntryLocked at removal.
func (c *Cache) reserveBytes(cost int64, key string) bool {
	max := c.opts.MaxBytes
	if max <= 0 {
		c.bytesUsed.Add(cost)
		return true
	}
	if cost > max {
		c.oversizeRejects.Add(1)
		return false
	}
	var keyHash uint64
	hashed := false
	for {
		n := c.bytesUsed.Load()
		if n+cost <= max {
			if c.bytesUsed.CompareAndSwap(n, n+cost) {
				return true
			}
			continue
		}
		v := c.pickVictim()
		if v == nil {
			// Every accounted byte belongs to an in-flight insert; let them
			// link so victims exist.
			runtime.Gosched()
			continue
		}
		if c.admit != nil {
			if !hashed {
				keyHash = tinylfu.HashString(key)
				hashed = true
			}
			if !c.admit.Admit(keyHash, tinylfu.HashString(v.key)) {
				c.admissionRejects.Add(1)
				return false
			}
		}
		c.evictPick(v)
	}
}

// addDepLocked registers one (template, vector) -> page link. The caller
// holds the page's shard lock; the dependency shard lock nests inside it.
func (c *Cache) addDepLocked(d analysis.Query, pageKey string) {
	ds := c.depShard(d.SQL)
	ds.mu.Lock()
	dt := ds.deps[d.SQL]
	if dt == nil {
		// The template info (and its probe predicates) is memoised in
		// the engine; an unparseable template degrades to unindexed.
		info, err := c.opts.Engine.Template(d.SQL)
		if err != nil {
			info = nil
		}
		dt = newDepTemplate(info)
		ds.deps[d.SQL] = dt
	}
	ak := argsKey(d.Args)
	inst := dt.instances[ak]
	if inst == nil {
		inst = &depInstance{query: d, pages: make(map[string]bool)}
		dt.addInstance(ak, inst)
	}
	inst.pages[pageKey] = true
	ds.mu.Unlock()
}

// InvalidateWrite removes every cached page whose dependency set intersects
// the write (§3.1 "cache invalidations"), then broadcasts the capture to
// the attached cluster peers, if any (§3.2 cluster-wide: in strong mode the
// call returns only after every reachable peer has also invalidated). It
// returns the number of pages invalidated locally. The write should have
// been captured with Engine.CaptureWrite before the write executed.
func (c *Cache) InvalidateWrite(w analysis.WriteCapture) (int, error) {
	n, err := c.InvalidateWriteLocal(w)
	if err != nil {
		return n, err
	}
	if r := c.loadRemote(); r != nil {
		if berr := r.BroadcastWrite(w); berr != nil {
			// The local sweep already ran; the error (strict cluster mode)
			// names the peers that missed the broadcast.
			return n, berr
		}
	}
	return n, nil
}

// InvalidateWriteLocal is InvalidateWrite restricted to this process's
// cache — no peer broadcast. It is the entry point for invalidations that
// arrive FROM a peer (broadcasting those again would echo forever) and for
// callers that manage fan-out themselves.
func (c *Cache) InvalidateWriteLocal(w analysis.WriteCapture) (int, error) {
	// Snapshot the dependency instances shard by shard, then run the
	// (potentially extra-query-backed) intersection tests outside all locks
	// so concurrent lookups are not serialised behind the analysis.
	type candidate struct {
		query analysis.Query
		pages []string
	}
	pw, err := c.opts.Engine.PrepareWrite(w)
	if err != nil {
		return 0, err
	}
	c.writesSeen.Add(1)
	// The epoch bump precedes the sweep (see the epoch field): an inserter
	// whose post-insert epoch check sees no change is guaranteed this sweep
	// had not started when it checked, so the sweep covers its entry. The
	// prepared write is retained so StaleSince can test raced inserts
	// precisely.
	c.recordEvent(c.epoch.Add(1), pw)
	// ColumnOnly deliberately ignores bound values, so the value-based
	// probe index must not narrow its candidate set.
	useProbes := c.opts.Engine.Strategy() != analysis.StrategyColumnOnly

	var candidates []candidate
	for i := range c.depShards {
		ds := &c.depShards[i]
		ds.mu.Lock()
		for tmpl, dt := range ds.deps {
			dep, derr := c.opts.Engine.PossiblyDependent(tmpl, w.SQL)
			if derr != nil {
				ds.mu.Unlock()
				return 0, derr
			}
			if !dep {
				continue
			}
			collect := func(inst *depInstance) {
				cand := candidate{query: inst.query, pages: make([]string, 0, len(inst.pages))}
				for page := range inst.pages {
					cand.pages = append(cand.pages, page)
				}
				candidates = append(candidates, cand)
			}
			probed := false
			if useProbes && dt.info != nil {
				if p, hasProbe := dt.info.Probes[pw.Table()]; hasProbe {
					if keys, bounded := pw.ProbeKeys(p.Col); bounded {
						seen := make(map[*depInstance]bool)
						for _, key := range keys {
							for _, inst := range dt.probeIdx[pw.Table()][key] {
								if !seen[inst] {
									seen[inst] = true
									collect(inst)
								}
							}
						}
						probed = true
					}
				}
			}
			if !probed {
				for _, inst := range dt.instances {
					collect(inst)
				}
			}
		}
		ds.mu.Unlock()
	}

	victims := make(map[string]bool)
	for _, cand := range candidates {
		hit, err := pw.Intersects(cand.query)
		if err != nil {
			return 0, err
		}
		if !hit {
			continue
		}
		for _, page := range cand.pages {
			victims[page] = true
		}
	}

	n := 0
	for key := range victims {
		s := c.pageShard(key)
		s.mu.Lock()
		el, inL1 := s.pages[key]
		if inL1 {
			c.removeEntryLocked(s, el)
			c.invalidations.Add(1)
			n++
		}
		if c.opts.L2 != nil {
			// Tombstone the disk copy under the same shard lock that removed
			// the L1 entry, so a racing promotion's locked recheck cannot
			// slip a stale body back in between the two removals.
			if deps, was := c.opts.L2.Remove(key); was && !inL1 {
				c.unlinkDeps(key, deps)
				c.invalidations.Add(1)
				n++
			}
		}
		s.mu.Unlock()
	}
	if c.opts.L2 != nil {
		// §3.2 across restarts: the tombstones must be durable before the
		// writer's response is released, or a crash could resurrect the
		// swept pages at the next boot.
		if err := c.opts.L2.Sync(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// InvalidateKey removes a single page, if present. It returns true when a
// page was removed. This is the developer-facing escape hatch the paper's
// §8 describes for externally-driven invalidation (e.g. database triggers).
func (c *Cache) InvalidateKey(key string) bool {
	s := c.pageShard(key)
	s.mu.Lock()
	el, inL1 := s.pages[key]
	if inL1 {
		c.removeEntryLocked(s, el)
	}
	removed := inL1
	if c.opts.L2 != nil {
		if deps, was := c.opts.L2.Remove(key); was {
			if !inL1 {
				c.unlinkDeps(key, deps)
			}
			removed = true
		}
	}
	s.mu.Unlock()
	if !removed {
		return false
	}
	if c.opts.L2 != nil {
		_ = c.opts.L2.Sync()
	}
	c.invalidations.Add(1)
	return true
}

// Flush empties the cache, then broadcasts the flush to the attached
// cluster peers, if any. Entries are removed shard by shard through the
// regular removal path, so the dependency table stays consistent; pages
// inserted concurrently with the flush may survive, as they would had they
// been inserted just after it.
func (c *Cache) Flush() {
	c.FlushLocal()
	if r := c.loadRemote(); r != nil {
		// Peers a strict broadcast reports as missed need no action here:
		// the local flush succeeded and the missed peers quarantine-flush
		// on rejoin, so the signature stays simple for Flush's many callers.
		_ = r.BroadcastFlush()
	}
}

// FlushLocal empties this process's cache without broadcasting — the entry
// point for flushes arriving from a peer.
func (c *Cache) FlushLocal() {
	c.recordEvent(c.epoch.Add(1), nil)
	// The flushing flag closes the tier-crossing races for the duration of
	// the two-phase sweep: an eviction demoting a pre-flush page after the
	// store flush, or a promotion re-linking a disk copy into an
	// already-swept shard, would carry that page past the flush. While the
	// flag is up, demotions degrade to removals and promotions abort; the
	// shard locks order every such transition against the sweep below, so
	// a transition that ran before the flag was visible is cleaned up by
	// whichever phase comes after it.
	c.flushing.Add(1)
	defer c.flushing.Add(-1)
	for i := range c.pageShards {
		s := &c.pageShards[i]
		s.mu.Lock()
		for s.order.Front() != nil {
			c.removeEntryLocked(s, s.order.Front())
		}
		for s.prot.Front() != nil {
			c.removeEntryLocked(s, s.prot.Front())
		}
		s.mu.Unlock()
	}
	if c.opts.L2 != nil {
		// Disk tier second: any demotion that slipped in ahead of the flag
		// left its L1 entry removed above and its disk copy dies here, with
		// the flush marker made durable before FlushAll returns.
		if dropped, err := c.opts.L2.FlushAll(); err == nil {
			for _, d := range dropped {
				s := c.pageShard(d.Key)
				s.mu.Lock()
				if _, inL1 := s.pages[d.Key]; !inL1 {
					c.unlinkDeps(d.Key, d.Deps)
				}
				s.mu.Unlock()
			}
		}
	}
}

// Epoch returns the invalidation-event counter: it advances at the start of
// every write-invalidation sweep and flush (local or peer-applied; single-key
// InvalidateKey removals do not count — they cannot make an unrelated
// in-flight page stale). An inserter that reads the epoch before generating
// an entry and sees it unchanged after inserting knows no sweep overlapped
// its window; on a change, StaleSince decides whether any raced sweep
// actually intersects the entry's dependencies.
func (c *Cache) Epoch() uint64 { return c.epoch.Load() }

// recentWriteWindow is how many recent invalidation events the cache
// retains for StaleSince. Deeper than any plausible number of writes racing
// one page generation; an inserter whose window outlived the ring is judged
// stale conservatively.
const recentWriteWindow = 256

// recentWrite is one retained invalidation event: the sweep's prepared
// write, or nil for a flush (stale for every dependency set).
type recentWrite struct {
	epoch uint64
	pw    *analysis.PreparedWrite
}

// recordEvent retains one invalidation event under its (already bumped)
// epoch. pw == nil marks a flush.
func (c *Cache) recordEvent(epoch uint64, pw *analysis.PreparedWrite) {
	c.recentMu.Lock()
	c.recent[epoch%recentWriteWindow] = recentWrite{epoch: epoch, pw: pw}
	c.recentMu.Unlock()
}

// StaleSince reports whether an entry whose generate+insert window started
// at epoch0 (and whose insert has completed) may have escaped an
// invalidation sweep it depended on: it tests deps against the prepared
// write of every epoch in (epoch0, now]. Sweeps that start after the insert
// see the entry in the tables, so only that interval matters. Unknown
// territory — a flush, an evicted ring slot, an analysis error — reports
// stale; over-invalidation is always sound (§3.2).
func (c *Cache) StaleSince(epoch0 uint64, deps []analysis.Query) bool {
	cur := c.epoch.Load()
	if cur == epoch0 {
		return false
	}
	if cur-epoch0 > recentWriteWindow {
		return true
	}
	raced := make([]*analysis.PreparedWrite, 0, cur-epoch0)
	c.recentMu.Lock()
	for e := epoch0 + 1; e <= cur; e++ {
		rw := c.recent[e%recentWriteWindow]
		if rw.epoch != e || rw.pw == nil {
			c.recentMu.Unlock()
			return true
		}
		raced = append(raced, rw.pw)
	}
	c.recentMu.Unlock()
	for _, pw := range raced {
		for _, d := range deps {
			hit, err := pw.Intersects(d)
			if err != nil || hit {
				return true
			}
		}
	}
	return false
}

// Len returns the current number of cached pages.
func (c *Cache) Len() int {
	return int(c.entries.Load())
}

// Bytes returns the accounted memory currently charged against MaxBytes:
// every linked entry's cost plus in-flight insert reservations.
func (c *Cache) Bytes() int64 {
	return c.bytesUsed.Load()
}

// ShardBytes returns the per-shard accounted byte counters — the summed
// cost of the entries linked into each shard (in-flight reservations are
// carried only by the cache-wide counter, so the slice sums to at most
// Bytes). Diagnostic: a skewed distribution means a hot key-space region.
func (c *Cache) ShardBytes() []int64 {
	out := make([]int64, len(c.pageShards))
	for i := range c.pageShards {
		out[i] = c.pageShards[i].bytes.Load()
	}
	return out
}

// Contains reports whether key is cached (without touching recency state or
// hit/miss counters). Expired entries report false.
func (c *Cache) Contains(key string) bool {
	now := c.opts.Clock()
	s := c.pageShard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.pages[key]
	if !ok {
		return false
	}
	e := el.Value.(*Entry)
	return e.ExpiresAt.IsZero() || !now.After(e.ExpiresAt)
}

// Snapshot returns a point-in-time copy of the cache counters — the
// canonical stats accessor shared by every layer (weave, cache, qrcache,
// cluster all expose Snapshot()); the telemetry collectors consume it.
func (c *Cache) Snapshot() Stats {
	st := Stats{
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Inserts:            c.inserts.Load(),
		Invalidations:      c.invalidations.Load(),
		Evictions:          c.evictions.Load(),
		EvictionsProtected: c.evictionsProt.Load(),
		Expirations:        c.expirations.Load(),
		WritesSeen:         c.writesSeen.Load(),
		AdmissionRejects:   c.admissionRejects.Load(),
		OversizeRejects:    c.oversizeRejects.Load(),
		GzipCompressions:   c.gzipCompressions.Load(),
		Demotions:          c.demotions.Load(),
		Promotions:         c.promotions.Load(),
		PromoteAborts:      c.promoteAborts.Load(),
		Entries:            int(c.entries.Load()),
		Bytes:              c.bytesUsed.Load(),
		VariantBytes:       c.variantBytes.Load(),
	}
	if c.opts.L2 != nil {
		st.L2 = c.opts.L2.Snapshot()
	}
	st.EvictionsProbation = st.Evictions - st.EvictionsProtected
	for i := range c.pageShards {
		s := &c.pageShards[i]
		s.mu.Lock()
		st.ProbationEntries += s.order.Len()
		st.ProtectedEntries += s.prot.Len()
		pb := s.protBytes.Load()
		st.ProtectedBytes += pb
		st.ProbationBytes += s.bytes.Load() - pb
		s.mu.Unlock()
	}
	for i := range c.depShards {
		ds := &c.depShards[i]
		ds.mu.Lock()
		st.DepTemplates += len(ds.deps)
		for _, dt := range ds.deps {
			st.DepInstances += len(dt.instances)
		}
		ds.mu.Unlock()
	}
	return st
}

// Stats is Snapshot under its historical name.
func (c *Cache) Stats() Stats { return c.Snapshot() }

// removeEntryLocked unlinks an entry from its shard's page table and order
// list, releases its capacity slot, and clears its dependency links. The
// caller holds s.mu; dependency shard locks nest inside it.
func (c *Cache) removeEntryLocked(s *pageShard, el *list.Element) {
	c.detachEntryLocked(s, el)
	c.entries.Add(-1)
}

// detachEntryLocked is removeEntryLocked without releasing the capacity
// slot, crediting the entry's byte cost back to the budget.
func (c *Cache) detachEntryLocked(s *pageShard, el *list.Element) {
	c.unlinkEntryLocked(s, el)
	c.bytesUsed.Add(-el.Value.(*Entry).cost)
}

// unlinkEntryLocked removes an entry from the shard's lists, page map and
// dependency table WITHOUT touching the cache-wide byte counter — the
// replacement fast path uses it to hand the old entry's budget directly to
// its successor. All other removals go through detachEntryLocked.
func (c *Cache) unlinkEntryLocked(s *pageShard, el *list.Element) {
	e := el.Value.(*Entry)
	c.unlinkShardLocked(s, el, e)
	c.unlinkDeps(e.Key, e.Deps)
}

// unlinkShardLocked is the shard-local half of unlinkEntryLocked: lists,
// page map and per-shard byte counters, leaving the dependency table alone.
// Demotion uses it directly — the disk copy keeps its dependency links, so
// the dependency table stays the single source of truth for both tiers.
func (c *Cache) unlinkShardLocked(s *pageShard, el *list.Element, e *Entry) {
	if e.protected {
		s.prot.Remove(el)
		s.protBytes.Add(-e.cost)
	} else {
		s.order.Remove(el)
	}
	s.bytes.Add(-e.cost)
	if e.Gzip != nil {
		c.variantBytes.Add(-int64(len(e.Gzip)))
	}
	delete(s.pages, e.Key)
}

// unlinkDeps clears key's links from the given dependency instances,
// dropping instances (and templates) that no longer back any page. Called
// with a page shard lock held (dependency shard locks nest inside) or, for
// keys resident in neither tier, with no page lock at all.
func (c *Cache) unlinkDeps(key string, deps []analysis.Query) {
	for _, d := range deps {
		ds := c.depShard(d.SQL)
		ds.mu.Lock()
		if dt := ds.deps[d.SQL]; dt != nil {
			ak := argsKey(d.Args)
			if inst := dt.instances[ak]; inst != nil {
				delete(inst.pages, key)
				if len(inst.pages) == 0 {
					dt.removeInstance(ak, inst)
				}
				if len(dt.instances) == 0 {
					delete(ds.deps, d.SQL)
				}
			}
		}
		ds.mu.Unlock()
	}
}

// pick identifies one eviction candidate found by a cross-shard scan.
type pick struct {
	shard *pageShard
	key   string
	hits  uint64
	seq   uint64
}

// evictOne removes the globally-best victim under the replacement policy.
// It reports whether a page was removed.
func (c *Cache) evictOne() bool {
	v := c.pickVictim()
	if v == nil {
		return false
	}
	return c.evictPick(v)
}

// pickVictim scans for the globally-best victim under the replacement
// policy, locking one shard at a time: list fronts (LRU/FIFO) or full scans
// (LFU) pick the candidate. Under segmented eviction the probation segment
// is exhausted cluster-of-shards-wide before any protected entry is
// considered, so pages with proven reuse survive one-hit churn. nil means
// no linked entry exists anywhere.
func (c *Cache) pickVictim() *pick {
	if v := c.scanSegment(false); v != nil {
		return v
	}
	if c.segmented() {
		return c.scanSegment(true)
	}
	return nil
}

// scanSegment finds the best victim within one segment (probation or
// protected) across all shards.
func (c *Cache) scanSegment(protected bool) *pick {
	var best *pick
	better := func(p pick) bool {
		if best == nil {
			return true
		}
		if c.opts.Replacement == LFU && p.hits != best.hits {
			return p.hits < best.hits
		}
		return p.seq < best.seq
	}
	for i := range c.pageShards {
		s := &c.pageShards[i]
		l := s.order
		if protected {
			l = s.prot
		}
		s.mu.Lock()
		switch c.opts.Replacement {
		case LRU, FIFO:
			// LRU keeps each list in recency order (MoveToBack on hit
			// refreshes seq; promotion re-sequences into the protected
			// list's back); FIFO never reorders or promotes. Either way the
			// list front carries the shard-minimal seq for its segment.
			if el := l.Front(); el != nil {
				e := el.Value.(*Entry)
				if p := (pick{shard: s, key: e.Key, seq: e.seq}); better(p) {
					best = &p
				}
			}
		case LFU:
			for el := l.Front(); el != nil; el = el.Next() {
				e := el.Value.(*Entry)
				if p := (pick{shard: s, key: e.Key, hits: e.hits, seq: e.seq}); better(p) {
					best = &p
				}
			}
		}
		s.mu.Unlock()
	}
	return best
}

// evictPick re-locks the picked shard and evicts the victim — demoting it
// into the disk tier when one is attached. It reports whether a page was
// removed.
func (c *Cache) evictPick(best *pick) bool {
	s := best.shard
	s.mu.Lock()
	// The victim may have been removed (or, for LRU, touched) since the
	// scan; evicting whatever entry now holds the key is still sound — any
	// resident entry is a valid victim — but a vanished key means retry.
	el, ok := s.pages[best.key]
	if !ok {
		s.mu.Unlock()
		return false
	}
	e := el.Value.(*Entry)
	fromProtected := e.protected
	var dropped []l2.Dropped
	if c.opts.L2 != nil {
		dropped = c.demoteLocked(s, el, e)
	} else {
		c.removeEntryLocked(s, el)
	}
	c.evictions.Add(1)
	if fromProtected {
		c.evictionsProt.Add(1)
	}
	s.mu.Unlock()
	// Keys the disk tier's byte budget pushed out ride back here; their
	// dependency unlinking locks other page shards, so it must happen
	// after this shard's lock is released.
	c.processDropped(dropped)
	return true
}

// argsKey renders a value vector as a map key.
func argsKey(args []datasource.Value) string { return datasource.KeyOfValues(args) }
