// Package cache implements AutoWebCache's core page cache (§3.1, Fig. 3):
//
//   - a page table mapping request URIs (including arguments) to cached web
//     pages, and
//   - a dependency table mapping each read-query template to the (value
//     vector, page key) pairs that used it,
//
// plus the consistency machinery of §3.2: on a write, the query-analysis
// engine decides which cached read instances the write intersects, and the
// pages depending on them are invalidated.
//
// Beyond the paper's core, the package implements the extensions its §9
// lists as future work: bounded capacity with pluggable replacement policies
// (LRU, LFU, FIFO) and time-lagged (TTL) weak consistency, which also
// realises the TPC-W BestSellers 30-second semantic window of §4.3.
package cache

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"autowebcache/internal/analysis"
	"autowebcache/internal/memdb"
)

// ReplacementPolicy selects the eviction order under bounded capacity.
type ReplacementPolicy int

// Replacement policies. Start at 1 so the zero value selects the default in
// Options (LRU).
const (
	LRU ReplacementPolicy = iota + 1
	LFU
	FIFO
)

func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case LFU:
		return "LFU"
	case FIFO:
		return "FIFO"
	}
	return "INVALID"
}

// Options configures a Cache.
type Options struct {
	// Engine decides read/write intersections. Required.
	Engine *analysis.Engine
	// MaxEntries bounds the number of cached pages; 0 means unbounded.
	MaxEntries int
	// Replacement selects the eviction policy when MaxEntries is exceeded.
	// Defaults to LRU.
	Replacement ReplacementPolicy
	// Clock supplies the current time; defaults to time.Now. Injectable for
	// deterministic TTL tests.
	Clock func() time.Time
	// ForceMiss makes every Lookup miss while leaving inserts and
	// invalidations in place. The paper uses this mode to measure the
	// cache-lookup overhead (§6, Fig. 14 discussion: "forcing a cache miss
	// on every lookup... the performance difference to NoCache is
	// negligible").
	ForceMiss bool
}

// Entry is one cached page together with its dependency information.
type Entry struct {
	Key         string
	Body        []byte
	ContentType string
	// Deps are the read-query instances whose results the page was
	// generated from (template + value vector, §3.1 "dependency info").
	Deps       []analysis.Query
	InsertedAt time.Time
	// ExpiresAt, when non-zero, makes the entry invisible after this time —
	// used for TTL (weak) consistency and semantic windows.
	ExpiresAt time.Time

	hits       uint64
	lastAccess time.Time
}

// Stats are cumulative cache counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Inserts       uint64
	Invalidations uint64 // pages removed by write invalidation
	Evictions     uint64 // pages removed by capacity pressure
	Expirations   uint64 // pages removed because their TTL passed
	WritesSeen    uint64 // InvalidateWrite calls
	Entries       int    // current page count
	DepTemplates  int    // current dependency-table template count
	DepInstances  int    // current dependency-table (template, vector) count
}

// depInstance is one row of the dependency table's value-vector level: a
// concrete read-query instance and the pages built from it.
type depInstance struct {
	query analysis.Query
	pages map[string]bool
}

// depTemplate groups the instances of one read-query template, with a probe
// index per table: instances keyed by the value their `table.col = ?`
// predicate binds. A write whose effect on that column is bounded only
// needs to test the matching instances — the result-caching optimisation
// the paper relies on for near-zero run-time analysis overhead (§7).
type depTemplate struct {
	info      *analysis.TemplateInfo // nil when the template is unparseable
	instances map[string]*depInstance
	// probeIdx: table -> probe key -> argsKey -> instance.
	probeIdx map[string]map[string]map[string]*depInstance
}

func newDepTemplate(info *analysis.TemplateInfo) *depTemplate {
	return &depTemplate{
		info:      info,
		instances: make(map[string]*depInstance),
		probeIdx:  make(map[string]map[string]map[string]*depInstance),
	}
}

// probeKeyFor returns the probe key of an instance for one table's probe,
// or ok=false when the instance has no value at the probed argument.
func probeKeyFor(p analysis.Probe, args []memdb.Value) (string, bool) {
	if p.ArgIndex < 0 || p.ArgIndex >= len(args) {
		return "", false
	}
	return analysis.ProbeKey(args[p.ArgIndex]), true
}

// addInstance registers an instance in the probe indexes.
func (dt *depTemplate) addInstance(argsKey string, inst *depInstance) {
	dt.instances[argsKey] = inst
	if dt.info == nil {
		return
	}
	for table, p := range dt.info.Probes {
		key, ok := probeKeyFor(p, inst.query.Args)
		if !ok {
			continue
		}
		byKey := dt.probeIdx[table]
		if byKey == nil {
			byKey = make(map[string]map[string]*depInstance)
			dt.probeIdx[table] = byKey
		}
		byArgs := byKey[key]
		if byArgs == nil {
			byArgs = make(map[string]*depInstance)
			byKey[key] = byArgs
		}
		byArgs[argsKey] = inst
	}
}

// removeInstance unregisters an instance from the probe indexes.
func (dt *depTemplate) removeInstance(argsKey string, inst *depInstance) {
	delete(dt.instances, argsKey)
	if dt.info == nil {
		return
	}
	for table, p := range dt.info.Probes {
		key, ok := probeKeyFor(p, inst.query.Args)
		if !ok {
			continue
		}
		if byArgs := dt.probeIdx[table][key]; byArgs != nil {
			delete(byArgs, argsKey)
			if len(byArgs) == 0 {
				delete(dt.probeIdx[table], key)
			}
		}
	}
}

// Cache is the page cache. It is safe for concurrent use.
type Cache struct {
	opts Options

	mu    sync.Mutex
	pages map[string]*list.Element // key -> element holding *Entry
	order *list.List               // LRU/FIFO order: front = next victim
	// deps: template SQL -> template group (instances + probe indexes).
	deps map[string]*depTemplate

	hits          uint64
	misses        uint64
	inserts       uint64
	invalidations uint64
	evictions     uint64
	expirations   uint64
	writesSeen    uint64
}

// New creates a cache. Options.Engine must be set.
func New(opts Options) (*Cache, error) {
	if opts.Engine == nil {
		return nil, fmt.Errorf("cache: Options.Engine is required")
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Replacement == 0 {
		opts.Replacement = LRU
	}
	switch opts.Replacement {
	case LRU, LFU, FIFO:
	default:
		return nil, fmt.Errorf("cache: invalid replacement policy %d", int(opts.Replacement))
	}
	if opts.MaxEntries < 0 {
		return nil, fmt.Errorf("cache: negative MaxEntries")
	}
	return &Cache{
		opts:  opts,
		pages: make(map[string]*list.Element),
		order: list.New(),
		deps:  make(map[string]*depTemplate),
	}, nil
}

// Engine returns the cache's analysis engine.
func (c *Cache) Engine() *analysis.Engine { return c.opts.Engine }

// Lookup returns the cached page for key, if present and not expired
// (§3.1 "cache checks").
func (c *Cache) Lookup(key string) (body []byte, contentType string, ok bool) {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, present := c.pages[key]
	if !present || c.opts.ForceMiss {
		c.misses++
		return nil, "", false
	}
	e := el.Value.(*Entry)
	if !e.ExpiresAt.IsZero() && now.After(e.ExpiresAt) {
		c.removeEntryLocked(el)
		c.expirations++
		c.misses++
		return nil, "", false
	}
	c.hits++
	e.hits++
	e.lastAccess = now
	if c.opts.Replacement == LRU {
		c.order.MoveToBack(el)
	}
	// Copy at the boundary: callers own the returned slice.
	out := make([]byte, len(e.Body))
	copy(out, e.Body)
	return out, e.ContentType, true
}

// Insert stores a page with its dependency information (§3.1 "cache
// inserts"). ttl > 0 arms an expiry (TTL consistency / semantic windows);
// ttl == 0 means the entry lives until invalidated or evicted. The body and
// deps are copied.
func (c *Cache) Insert(key string, body []byte, contentType string, deps []analysis.Query, ttl time.Duration) {
	now := c.opts.Clock()
	e := &Entry{
		Key:         key,
		Body:        append([]byte(nil), body...),
		ContentType: contentType,
		Deps:        copyDeps(deps),
		InsertedAt:  now,
		lastAccess:  now,
	}
	if ttl > 0 {
		e.ExpiresAt = now.Add(ttl)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, exists := c.pages[key]; exists {
		c.removeEntryLocked(old)
	}
	if c.opts.MaxEntries > 0 {
		for len(c.pages) >= c.opts.MaxEntries {
			c.evictOneLocked()
		}
	}
	el := c.order.PushBack(e)
	c.pages[key] = el
	for _, d := range e.Deps {
		dt := c.deps[d.SQL]
		if dt == nil {
			// The template info (and its probe predicates) is memoised in
			// the engine; an unparseable template degrades to unindexed.
			info, err := c.opts.Engine.Template(d.SQL)
			if err != nil {
				info = nil
			}
			dt = newDepTemplate(info)
			c.deps[d.SQL] = dt
		}
		ak := argsKey(d.Args)
		inst := dt.instances[ak]
		if inst == nil {
			inst = &depInstance{query: d, pages: make(map[string]bool)}
			dt.addInstance(ak, inst)
		}
		inst.pages[key] = true
	}
	c.inserts++
}

// InvalidateWrite removes every cached page whose dependency set intersects
// the write (§3.1 "cache invalidations"). It returns the number of pages
// invalidated. The write should have been captured with
// Engine.CaptureWrite before the write executed.
func (c *Cache) InvalidateWrite(w analysis.WriteCapture) (int, error) {
	// Snapshot the dependency instances under the lock, then run the
	// (potentially extra-query-backed) intersection tests outside it so
	// concurrent lookups are not serialised behind the analysis.
	type candidate struct {
		query analysis.Query
		pages []string
	}
	pw, err := c.opts.Engine.PrepareWrite(w)
	if err != nil {
		return 0, err
	}
	// ColumnOnly deliberately ignores bound values, so the value-based
	// probe index must not narrow its candidate set.
	useProbes := c.opts.Engine.Strategy() != analysis.StrategyColumnOnly

	c.mu.Lock()
	c.writesSeen++
	var candidates []candidate
	for tmpl, dt := range c.deps {
		dep, err := c.opts.Engine.PossiblyDependent(tmpl, w.SQL)
		if err != nil {
			c.mu.Unlock()
			return 0, err
		}
		if !dep {
			continue
		}
		collect := func(inst *depInstance) {
			cand := candidate{query: inst.query, pages: make([]string, 0, len(inst.pages))}
			for page := range inst.pages {
				cand.pages = append(cand.pages, page)
			}
			candidates = append(candidates, cand)
		}
		probed := false
		if useProbes && dt.info != nil {
			if p, hasProbe := dt.info.Probes[pw.Table()]; hasProbe {
				if keys, bounded := pw.ProbeKeys(p.Col); bounded {
					seen := make(map[*depInstance]bool)
					for _, key := range keys {
						for _, inst := range dt.probeIdx[pw.Table()][key] {
							if !seen[inst] {
								seen[inst] = true
								collect(inst)
							}
						}
					}
					probed = true
				}
			}
		}
		if !probed {
			for _, inst := range dt.instances {
				collect(inst)
			}
		}
	}
	c.mu.Unlock()

	victims := make(map[string]bool)
	for _, cand := range candidates {
		hit, err := pw.Intersects(cand.query)
		if err != nil {
			return 0, err
		}
		if !hit {
			continue
		}
		for _, page := range cand.pages {
			victims[page] = true
		}
	}

	n := 0
	c.mu.Lock()
	for key := range victims {
		if el, ok := c.pages[key]; ok {
			c.removeEntryLocked(el)
			c.invalidations++
			n++
		}
	}
	c.mu.Unlock()
	return n, nil
}

// InvalidateKey removes a single page, if present. It returns true when a
// page was removed. This is the developer-facing escape hatch the paper's
// §8 describes for externally-driven invalidation (e.g. database triggers).
func (c *Cache) InvalidateKey(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.pages[key]
	if !ok {
		return false
	}
	c.removeEntryLocked(el)
	c.invalidations++
	return true
}

// Flush empties the cache.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pages = make(map[string]*list.Element)
	c.order = list.New()
	c.deps = make(map[string]*depTemplate)
}

// Len returns the current number of cached pages.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pages)
}

// Contains reports whether key is cached (without touching recency state or
// hit/miss counters). Expired entries report false.
func (c *Cache) Contains(key string) bool {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.pages[key]
	if !ok {
		return false
	}
	e := el.Value.(*Entry)
	return e.ExpiresAt.IsZero() || !now.After(e.ExpiresAt)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	nInst := 0
	for _, dt := range c.deps {
		nInst += len(dt.instances)
	}
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Inserts:       c.inserts,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Expirations:   c.expirations,
		WritesSeen:    c.writesSeen,
		Entries:       len(c.pages),
		DepTemplates:  len(c.deps),
		DepInstances:  nInst,
	}
}

// removeEntryLocked unlinks an entry from the page table, the order list and
// the dependency table. The caller holds c.mu.
func (c *Cache) removeEntryLocked(el *list.Element) {
	e := el.Value.(*Entry)
	c.order.Remove(el)
	delete(c.pages, e.Key)
	for _, d := range e.Deps {
		dt := c.deps[d.SQL]
		if dt == nil {
			continue
		}
		ak := argsKey(d.Args)
		inst := dt.instances[ak]
		if inst == nil {
			continue
		}
		delete(inst.pages, e.Key)
		if len(inst.pages) == 0 {
			dt.removeInstance(ak, inst)
		}
		if len(dt.instances) == 0 {
			delete(c.deps, d.SQL)
		}
	}
}

// evictOneLocked removes one page according to the replacement policy. The
// caller holds c.mu and guarantees the cache is non-empty.
func (c *Cache) evictOneLocked() {
	var victim *list.Element
	switch c.opts.Replacement {
	case LRU, FIFO:
		// LRU keeps the order list in recency order (MoveToBack on hit);
		// FIFO never reorders. Either way the front is the victim.
		victim = c.order.Front()
	case LFU:
		minHits := ^uint64(0)
		for el := c.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*Entry)
			if e.hits < minHits {
				minHits = e.hits
				victim = el
			}
		}
	}
	if victim != nil {
		c.removeEntryLocked(victim)
		c.evictions++
	}
}

func copyDeps(deps []analysis.Query) []analysis.Query {
	out := make([]analysis.Query, len(deps))
	for i, d := range deps {
		out[i] = analysis.Query{SQL: d.SQL, Args: append([]memdb.Value(nil), d.Args...)}
	}
	return out
}

// argsKey renders a value vector as a map key.
func argsKey(args []memdb.Value) string { return memdb.KeyOfValues(args) }
