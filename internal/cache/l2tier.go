// Disk-tier (L2) movement for the page cache: demotion on eviction,
// promotion on L1 miss, and the spill-on-shutdown path that makes a clean
// restart warm.
//
// Consistency across the tiers leans on two invariants:
//
//  1. The dependency table is the single source of truth for both tiers.
//     Demotion keeps the entry's dependency links; an invalidation sweep
//     finds disk-only keys through the same candidate scan as L1 keys and
//     removes them from the store before the writer's response is released.
//  2. Every transition for a key happens under that key's page shard lock:
//     the sweep removes the L1 entry and tombstones the disk copy in one
//     critical section, and a promotion re-checks the store (Contains)
//     inside the same lock before linking into L1. A promotion racing a
//     sweep therefore either linked early enough for the sweep to remove
//     it, or observes the tombstone and aborts — a stale body can never
//     slip back in behind a completed invalidation.
//
// Serving (without caching) a body read from the store needs no such
// recheck: the store's Get observed the record live, so any invalidation
// of it had not yet returned to its writer when this lookup began — the
// ordering §3.2 requires.
package cache

import (
	"container/list"

	"autowebcache/internal/cache/l2"
)

// promote serves an L1 miss from the disk tier: read the record, rebuild
// the entry (variants are derived locally, exactly like a cluster replica
// fetch), and admit it into L1 under the same budget rules as any insert.
// The promoted record stays live in the store; if the entry is later
// demoted unchanged, the existing disk record is reused (Entry.l2lsn).
func (c *Cache) promote(key string) (*Entry, bool) {
	rec, ok := c.opts.L2.Get(key)
	if !ok {
		if rec.Deps != nil {
			// The probe itself retired a resident record (expired TTL or an
			// unreadable body); clear its dependency links if the key is now
			// resident in neither tier.
			c.processDropped([]l2.Dropped{{Key: key, Deps: rec.Deps}})
		}
		return nil, false
	}
	now := c.opts.Clock()
	e := &Entry{
		Key:         key,
		Body:        rec.Body,
		ContentType: rec.ContentType,
		Deps:        rec.Deps,
		InsertedAt:  now,
		ExpiresAt:   rec.ExpiresAt,
		l2lsn:       rec.LSN,
	}
	c.buildVariants(e)
	e.cost = entryCost(key, e.Body, e.Deps) + variantCost(e)

	s := c.pageShard(key)
	s.mu.Lock()
	if el, exists := s.pages[key]; exists {
		// A concurrent insert or promotion landed first; its entry is at
		// least as fresh as the record just read.
		resident := el.Value.(*Entry)
		s.mu.Unlock()
		return resident, true
	}
	s.mu.Unlock()
	if !c.reserveBytes(e.cost, key) {
		// The byte budget (or admission filter) refused the promotion: the
		// body is still served, it just stays disk-resident — the same
		// serve-but-don't-store contract as TryInsert.
		return e, true
	}
	c.reserveSlot()
	s.mu.Lock()
	if el, exists := s.pages[key]; exists {
		resident := el.Value.(*Entry)
		c.bytesUsed.Add(-e.cost)
		c.entries.Add(-1)
		s.mu.Unlock()
		return resident, true
	}
	if c.opts.L2.LSN(key) != rec.LSN || c.flushing.Load() > 0 {
		// The record Get read is no longer the store's current one for the
		// key — an invalidation, flush or segment drop retired it (LSN 0),
		// or it was superseded by a fresh insert's demotion (newer LSN; a
		// bare existence check would wrongly pass). Either way, linking the
		// body now could resurrect it behind a completed sweep, so the
		// promotion aborts; the lookup reports a miss and the caller
		// regenerates. A flush in progress aborts for the same reason: this
		// shard may already have been swept.
		c.bytesUsed.Add(-e.cost)
		c.entries.Add(-1)
		s.mu.Unlock()
		c.promoteAborts.Add(1)
		return nil, false
	}
	c.insertEntryLocked(s, e)
	s.mu.Unlock()
	c.promotions.Add(1)
	return e, true
}

// demoteLocked moves an eviction victim into the disk tier instead of
// discarding it, keeping its dependency links. On any store refusal
// (oversize for the tier, store closed) it falls back to a plain removal.
// The caller holds s.mu; the returned budget-dropped keys must be processed
// after the lock is released.
func (c *Cache) demoteLocked(s *pageShard, el *list.Element, e *Entry) []l2.Dropped {
	if c.flushing.Load() > 0 {
		// A flush sweep is in progress: demoting now could land this page
		// in the store after the flush has already emptied it, carrying a
		// pre-flush body past the flush. Discard instead — the flush wanted
		// every resident page gone anyway.
		c.removeEntryLocked(s, el)
		return nil
	}
	if e.l2lsn != 0 && c.opts.L2.LSN(e.Key) == e.l2lsn {
		// The record this entry was promoted from is still the store's
		// newest for the key: no bytes need rewriting.
		c.detachKeepDepsLocked(s, el, e)
		c.demotions.Add(1)
		return nil
	}
	dropped, err := c.opts.L2.Put(e.Key, e.Body, e.ContentType, e.Deps, e.ExpiresAt)
	if err != nil {
		c.removeEntryLocked(s, el)
		return nil
	}
	c.detachKeepDepsLocked(s, el, e)
	c.demotions.Add(1)
	return dropped
}

// detachKeepDepsLocked releases an entry's L1 residence — lists, page map,
// byte budget, capacity slot — while leaving its dependency links in place
// for the disk copy. The caller holds s.mu.
func (c *Cache) detachKeepDepsLocked(s *pageShard, el *list.Element, e *Entry) {
	c.unlinkShardLocked(s, el, e)
	c.bytesUsed.Add(-e.cost)
	c.entries.Add(-1)
}

// processDropped clears the dependency links of keys the disk tier evicted
// as a side effect (oldest-segment drop, expiry, unreadable record) — but
// only when the key is resident in neither tier, which is re-checked under
// the key's shard lock because the key may have been re-inserted or
// re-demoted since the drop was reported. Must be called without any page
// shard lock held.
func (c *Cache) processDropped(dropped []l2.Dropped) {
	for _, d := range dropped {
		s := c.pageShard(d.Key)
		s.mu.Lock()
		_, inL1 := s.pages[d.Key]
		if !inL1 && !c.opts.L2.Contains(d.Key) {
			c.unlinkDeps(d.Key, d.Deps)
		}
		s.mu.Unlock()
	}
}

// dropStaleL2Locked retires the disk record for a key that just got a
// fresh L1 entry, so a crash before the new entry is ever demoted cannot
// roll the key back to the older body at the next boot. The tombstone is
// buffered (not fsync'd): losing it in a crash merely re-exposes a body
// that was never invalidated. The caller holds the key's shard lock with
// the new entry linked, so no dependency unlinking happens here.
func (c *Cache) dropStaleL2Locked(key string) {
	if c.opts.L2 == nil {
		return
	}
	c.opts.L2.Remove(key)
}

// Close spills every resident L1 page into the disk tier and closes the
// store — snapshot written, journal durable — so a clean (SIGTERM)
// shutdown restarts warm even if L1 pressure never forced a demotion.
// Without an attached store it is a no-op. The cache must not be used
// after Close.
func (c *Cache) Close() error {
	if c.opts.L2 == nil {
		return nil
	}
	var dropped []l2.Dropped
	for i := range c.pageShards {
		s := &c.pageShards[i]
		s.mu.Lock()
		for _, l := range []*list.List{s.order, s.prot} {
			for l.Front() != nil {
				el := l.Front()
				dropped = append(dropped, c.demoteLocked(s, el, el.Value.(*Entry))...)
			}
		}
		s.mu.Unlock()
	}
	c.processDropped(dropped)
	return c.opts.L2.Close()
}
