package cache

import (
	"fmt"
	"hash/crc32"
	"sync"
	"testing"

	"autowebcache/internal/analysis"
	"autowebcache/internal/memdb"
)

// TestZeroAllocHitPath guards the tentpole win: a page-cache hit must not
// allocate — the returned Page is a view of the stored entry, not a copy.
func TestZeroAllocHitPath(t *testing.T) {
	c := newTestCache(t, Options{})
	body := make([]byte, 4096)
	c.Insert("/page?x=1", body, "text/html", nil, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		pg, ok := c.Lookup("/page?x=1")
		if !ok || len(pg.Body) != len(body) {
			t.Fatal("unexpected miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("hit path allocates %.1f objects per lookup, want 0", allocs)
	}
}

// TestAliasingStressSharedViews proves the no-mutation contract under -race:
// concurrent readers hold returned views and re-checksum them while inserts,
// invalidations and evictions churn the cache. Every view must forever hash
// to the checksum of the body it was inserted with — a stored body is never
// rewritten in place, and a view outlives its entry's removal unchanged.
func TestAliasingStressSharedViews(t *testing.T) {
	e, err := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Engine: e, Shards: 8, MaxEntries: 48})
	if err != nil {
		t.Fatal(err)
	}
	const (
		readers = 8
		keys    = 64
		iters   = 400
	)
	// Each key's body encodes its key so its checksum is recomputable from
	// any version: body k = repeated "pageNN|" filled to 512+k bytes.
	mkBody := func(k int) []byte {
		b := make([]byte, 512+k)
		pat := fmt.Sprintf("page%02d|", k)
		for i := range b {
			b[i] = pat[i%len(pat)]
		}
		return b
	}
	sums := make([]uint32, keys)
	for k := 0; k < keys; k++ {
		sums[k] = crc32.ChecksumIEEE(mkBody(k))
	}
	keyOf := func(k int) string { return fmt.Sprintf("/page?x=%d", k) }

	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			type held struct {
				k    int
				view Page
			}
			var pinned []held // views held across churn, re-verified at the end
			for i := 0; i < iters; i++ {
				k := (g*17 + i) % keys
				key := keyOf(k)
				pg, ok := c.Lookup(key)
				if !ok {
					pg = c.Insert(key, mkBody(k), "text/html", []analysis.Query{
						{SQL: "SELECT a FROM items WHERE b = ?", Args: []memdb.Value{int64(k)}},
					}, 0)
				}
				if got := crc32.ChecksumIEEE(pg.Body); got != sums[k] {
					t.Errorf("key %d: view checksum %08x, want %08x", k, got, sums[k])
					return
				}
				if i%37 == 0 {
					pinned = append(pinned, held{k: k, view: pg})
				}
				if i%53 == 0 {
					// Churn: invalidate the hot row so dependent pages vanish
					// while other goroutines may still hold their views.
					if _, err := c.InvalidateWrite(analysis.WriteCapture{Query: analysis.Query{
						SQL: "UPDATE items SET a = ? WHERE b = ?", Args: []memdb.Value{int64(i), int64(k)},
					}}); err != nil {
						t.Error(err)
						return
					}
				}
			}
			// Views held across invalidation and eviction churn must still
			// carry the exact bytes they were inserted with.
			for _, h := range pinned {
				if got := crc32.ChecksumIEEE(h.view.Body); got != sums[h.k] {
					t.Errorf("pinned key %d: checksum %08x, want %08x", h.k, got, sums[h.k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
