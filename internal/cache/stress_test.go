package cache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"autowebcache/internal/analysis"
	"autowebcache/internal/memdb"
)

// TestStressStrongConsistency drives parallel readers and a writer over
// overlapping keys in rounds. Within a round, readers hammer Lookup/Insert
// concurrently across every shard; between rounds the writer commits a new
// version and invalidates. The §3.2 strong-consistency invariant is checked
// after every InvalidateWrite returns: no page carrying a dependency the
// write intersects may survive, across all shards.
func TestStressStrongConsistency(t *testing.T) {
	e, err := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Engine: e, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const (
		readers = 8
		keys    = 64
		rounds  = 30
	)
	version := func(k int) string { return fmt.Sprintf("/page?item=%d", k) }
	for round := 0; round < rounds; round++ {
		body := []byte(fmt.Sprintf("v%d", round))
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					k := (g*13 + i) % keys
					key := version(k)
					if _, ok := c.Lookup(key); !ok {
						// The page depends on the row it was built from:
						// items with b = k (the shared hot template).
						c.Insert(key, body, "text/html", []analysis.Query{
							{SQL: "SELECT a FROM items WHERE b = ?", Args: []memdb.Value{int64(k)}},
						}, 0)
					}
				}
			}(g)
		}
		wg.Wait()
		// The writer updates one hot row; every page depending on it and
		// fully inserted before this call must be gone when it returns.
		hot := int64(round % keys)
		if _, err := c.InvalidateWrite(analysis.WriteCapture{Query: analysis.Query{
			SQL: "UPDATE items SET a = ? WHERE b = ?", Args: []memdb.Value{int64(round), hot},
		}}); err != nil {
			t.Fatal(err)
		}
		if c.Contains(version(int(hot))) {
			t.Fatalf("round %d: stale page for hot key %d survived a committed write", round, hot)
		}
	}
}

// TestStressBoundedCapacity hammers a bounded cache from parallel writers
// and asserts the entries <= MaxEntries invariant continuously while
// inserts, lookups, invalidations and evictions race across shards.
func TestStressBoundedCapacity(t *testing.T) {
	for _, pol := range []ReplacementPolicy{LRU, LFU, FIFO} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			e, err := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
			if err != nil {
				t.Fatal(err)
			}
			const max = 48
			c, err := New(Options{Engine: e, MaxEntries: max, Replacement: pol, Shards: 8})
			if err != nil {
				t.Fatal(err)
			}
			var overflow atomic.Int64
			var wg sync.WaitGroup
			stop := make(chan struct{})
			var obsWg sync.WaitGroup
			// A dedicated observer polls the bound while mutators run.
			obsWg.Add(1)
			go func() {
				defer obsWg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if n := c.Len(); n > max {
						overflow.Store(int64(n))
						return
					}
					runtime.Gosched()
				}
			}()
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 400; i++ {
						k := (g*31 + i) % 160
						key := fmt.Sprintf("/p%d", k)
						switch {
						case i%5 == 4:
							c.Lookup(key)
						case i%17 == 16:
							c.InvalidateKey(key)
						default:
							c.Insert(key, []byte("x"), "text/html", []analysis.Query{
								{SQL: "SELECT a FROM t WHERE b = ?", Args: []memdb.Value{int64(k % 7)}},
							}, 0)
						}
						if n := c.Len(); n > max {
							overflow.Store(int64(n))
							return
						}
					}
				}(g)
			}
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 60; i++ {
						if _, err := c.InvalidateWrite(analysis.WriteCapture{Query: analysis.Query{
							SQL: "UPDATE t SET a = ? WHERE b = ?", Args: []memdb.Value{int64(i), int64(i % 7)},
						}}); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			obsWg.Wait()
			if n := overflow.Load(); n > 0 {
				t.Fatalf("capacity bound violated: observed %d entries > MaxEntries %d", n, max)
			}
			if n := c.Len(); n > max {
				t.Fatalf("final entries %d > MaxEntries %d", n, max)
			}
			// The dependency table must stay consistent with the page table:
			// flushing through the removal path must leave both empty.
			c.Flush()
			st := c.Stats()
			if st.Entries != 0 || st.DepTemplates != 0 || st.DepInstances != 0 {
				t.Fatalf("tables inconsistent after stress + flush: %+v", st)
			}
		})
	}
}

// TestStressCrossShardInvalidation verifies that one write chases its
// dependents across every page shard: many pages on distinct keys (hashing
// to different shards) share one dependency instance, and a single
// intersecting write must remove them all before returning.
func TestStressCrossShardInvalidation(t *testing.T) {
	e, err := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Engine: e, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	shared := analysis.Query{SQL: "SELECT a FROM t WHERE b = ?", Args: []memdb.Value{int64(1)}}
	var wg sync.WaitGroup
	const pages = 256
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < pages; i += 8 {
				c.Insert(fmt.Sprintf("/p%d", i), []byte("x"), "text/html", []analysis.Query{shared}, 0)
			}
		}(g)
	}
	wg.Wait()
	n, err := c.InvalidateWrite(analysis.WriteCapture{Query: analysis.Query{
		SQL: "UPDATE t SET a = ? WHERE b = ?", Args: []memdb.Value{int64(9), int64(1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if n != pages {
		t.Fatalf("invalidated %d pages, want %d", n, pages)
	}
	if c.Len() != 0 {
		t.Fatalf("%d stale pages survived", c.Len())
	}
	st := c.Stats()
	if st.DepTemplates != 0 || st.DepInstances != 0 {
		t.Fatalf("dependency table not cleaned: %+v", st)
	}
}
