package cache

import (
	"bytes"
	"compress/gzip"
	"io"
	"strconv"
	"strings"
	"testing"
	"time"

	"autowebcache/internal/analysis"
)

func variantCache(t *testing.T, opts Options) *Cache {
	t.Helper()
	if opts.Engine == nil {
		eng, err := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		opts.Engine = eng
	}
	c, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// compressible returns n bytes of repetitive HTML-ish content that gzip
// shrinks substantially.
func compressible(n int) []byte {
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString("<tr><td>item</td><td>price</td><td>bids</td></tr>\n")
	}
	return b.Bytes()[:n]
}

func gunzip(t *testing.T, gz []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatalf("gzip.NewReader: %v", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	return out
}

// The once-per-insert contract: the compressor runs exactly once when the
// entry is built, and never again — not on hits, not on exports.
func TestGzipCompressedExactlyOncePerInsert(t *testing.T) {
	c := variantCache(t, Options{Gzip: true, ETags: true})
	body := compressible(4096)
	pg := c.Insert("/k", body, "text/html", nil, 0)
	if got := c.Snapshot().GzipCompressions; got != 1 {
		t.Fatalf("GzipCompressions after insert = %d, want 1", got)
	}
	if pg.Gzip == nil {
		t.Fatalf("stored page has no gzip variant")
	}
	for i := 0; i < 50; i++ {
		if _, ok := c.Lookup("/k"); !ok {
			t.Fatalf("lookup miss")
		}
		if _, ok := c.Export("/k"); !ok {
			t.Fatalf("export miss")
		}
	}
	if got := c.Snapshot().GzipCompressions; got != 1 {
		t.Fatalf("GzipCompressions after 50 hits = %d, want 1 (compress once at insert)", got)
	}
	// A second insert of the same key is a new generation: one more run.
	c.Insert("/k", body, "text/html", nil, 0)
	if got := c.Snapshot().GzipCompressions; got != 2 {
		t.Fatalf("GzipCompressions after re-insert = %d, want 2", got)
	}
}

func TestGzipVariantRoundTripsAndShrinks(t *testing.T) {
	c := variantCache(t, Options{Gzip: true})
	body := compressible(8192)
	c.Insert("/k", body, "text/html", nil, 0)
	pg, ok := c.Lookup("/k")
	if !ok {
		t.Fatalf("lookup miss")
	}
	if len(pg.Gzip) == 0 || len(pg.Gzip) >= len(pg.Body) {
		t.Fatalf("gzip variant len %d vs body %d: want a strictly smaller variant", len(pg.Gzip), len(pg.Body))
	}
	if !bytes.Equal(gunzip(t, pg.Gzip), body) {
		t.Fatalf("gzip variant does not decompress to the identity body")
	}
	if pg.BodyLen != strconv.Itoa(len(body)) || pg.GzipLen != strconv.Itoa(len(pg.Gzip)) {
		t.Fatalf("precomputed lengths %q/%q do not match %d/%d", pg.BodyLen, pg.GzipLen, len(body), len(pg.Gzip))
	}
}

func TestGzipSkipsSmallAndIncompressibleBodies(t *testing.T) {
	c := variantCache(t, Options{Gzip: true})
	c.Insert("/small", compressible(64), "text/html", nil, 0)
	if pg, _ := c.Lookup("/small"); pg.Gzip != nil {
		t.Fatalf("variant built for a %d-byte body below the minimum", 64)
	}
	if got := c.Snapshot().GzipCompressions; got != 0 {
		t.Fatalf("compressor ran for a below-minimum body (%d runs)", got)
	}

	// Pseudo-random bytes do not compress; the attempt is counted but the
	// variant is discarded.
	junk := make([]byte, 4096)
	x := uint32(2463534242)
	for i := range junk {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		junk[i] = byte(x)
	}
	c.Insert("/junk", junk, "application/octet-stream", nil, 0)
	if pg, _ := c.Lookup("/junk"); pg.Gzip != nil {
		t.Fatalf("kept a gzip variant that does not shrink the body")
	}
	if got := c.Snapshot().GzipCompressions; got != 1 {
		t.Fatalf("GzipCompressions = %d, want 1 (attempt counted even when discarded)", got)
	}
}

func TestETagContentDerivedAndStable(t *testing.T) {
	c := variantCache(t, Options{ETags: true})
	body := []byte(strings.Repeat("stable content ", 40))
	pg1 := c.Insert("/k", body, "text/html", nil, 0)
	if pg1.ETag == "" || !strings.HasPrefix(pg1.ETag, `"`) || !strings.HasSuffix(pg1.ETag, `"`) {
		t.Fatalf("ETag %q: want a non-empty RFC 7232 quoted tag", pg1.ETag)
	}
	// Identical content regenerated after an invalidation keeps its tag...
	c.InvalidateKey("/k")
	pg2 := c.Insert("/k", body, "text/html", nil, 0)
	if pg2.ETag != pg1.ETag {
		t.Fatalf("identical content changed tag: %q -> %q", pg1.ETag, pg2.ETag)
	}
	// ...while any content change produces a new one.
	c.InvalidateKey("/k")
	pg3 := c.Insert("/k", append([]byte("x"), body...), "text/html", nil, 0)
	if pg3.ETag == pg1.ETag {
		t.Fatalf("changed content kept tag %q", pg1.ETag)
	}
	// Same content under a different key: same tag (content-derived, so
	// every cluster node computes it independently and identically).
	pg4 := c.Insert("/other", body, "text/html", nil, 0)
	if pg4.ETag != pg1.ETag {
		t.Fatalf("content-derived tag differs across keys: %q vs %q", pg4.ETag, pg1.ETag)
	}
}

func TestVariantBytesAccounting(t *testing.T) {
	c := variantCache(t, Options{Gzip: true, MaxBytes: 1 << 20})
	body := compressible(8192)
	pg := c.Insert("/k", body, "text/html", nil, 0)
	st := c.Snapshot()
	if st.VariantBytes != int64(len(pg.Gzip)) {
		t.Fatalf("VariantBytes = %d, want resident gzip payload %d", st.VariantBytes, len(pg.Gzip))
	}
	// The variant is charged against MaxBytes with its entry: accounted
	// bytes must cover body + variant, and removal credits both back.
	if st.Bytes < int64(len(body))+int64(len(pg.Gzip)) {
		t.Fatalf("Bytes = %d does not cover body %d + variant %d", st.Bytes, len(body), len(pg.Gzip))
	}
	c.InvalidateKey("/k")
	st = c.Snapshot()
	if st.VariantBytes != 0 || st.Bytes != 0 {
		t.Fatalf("after removal VariantBytes=%d Bytes=%d, want 0/0", st.VariantBytes, st.Bytes)
	}
}

// A budget sized for bodies must refuse entries whose variant pushes them
// over, instead of silently overshooting.
func TestVariantCountsAgainstByteBudget(t *testing.T) {
	body := compressible(4096)
	bare := variantCache(t, Options{})
	bareCost := entryCost("/k", body, nil)
	// Budget that fits the bare entry but not the variant-carrying one.
	c := variantCache(t, Options{Gzip: true, MaxBytes: bareCost + 32})
	if _, stored := c.TryInsert("/k", body, "text/html", nil, 0); stored {
		t.Fatalf("variant-carrying entry admitted into a budget of %d that cannot hold its variant", bareCost+32)
	}
	if _, stored := bare.TryInsert("/k", body, "text/html", nil, 0); !stored {
		t.Fatalf("sanity: bare entry should store unbounded")
	}
}

func TestVariantsOffByDefault(t *testing.T) {
	c := variantCache(t, Options{})
	pg := c.Insert("/k", compressible(4096), "text/html", nil, time.Minute)
	if pg.Gzip != nil || pg.ETag != "" || pg.BodyLen != "" || pg.GzipLen != "" {
		t.Fatalf("variant metadata built with both knobs off: %+v", pg)
	}
	if st := c.Snapshot(); st.GzipCompressions != 0 || st.VariantBytes != 0 {
		t.Fatalf("variant counters moved with both knobs off: %+v", st)
	}
}
