package cache

// Integration tests for the disk (L2) tier: demote/promote movement,
// cross-tier invalidation (the §3.2 guarantee extended to disk-resident
// pages), warm restart without resurrection, spill-on-close, and the
// byte-accounting drain audit.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"autowebcache/internal/analysis"
	"autowebcache/internal/cache/l2"
)

func newL2Store(t *testing.T, dir string, maxBytes int64) *l2.Store {
	t.Helper()
	s, err := l2.Open(l2.Options{Dir: dir, MaxBytes: maxBytes, SnapshotInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func l2Key(i int) string  { return fmt.Sprintf("/p?id=%d", i) }
func l2Body(i int) []byte { return []byte(strings.Repeat(fmt.Sprintf("<b%d>", i), 256)) }
func l2Dep(i int) analysis.Query {
	return dep("SELECT a FROM T WHERE b = ?", int64(i))
}

func TestL2DemoteAndPromote(t *testing.T) {
	store := newL2Store(t, t.TempDir(), 0)
	c := newTestCache(t, Options{MaxBytes: 8 << 10, L2: store})
	defer c.Close()

	const n = 16
	for i := 0; i < n; i++ {
		c.Insert(l2Key(i), l2Body(i), "text/html", []analysis.Query{l2Dep(i)}, 0)
	}
	st := c.Stats()
	if st.Demotions == 0 {
		t.Fatalf("byte pressure produced no demotions: %+v", st)
	}
	// Find a key that fell out of L1 — it must still be answerable, bit-exact,
	// from the disk tier.
	victim := -1
	for i := 0; i < n; i++ {
		if !c.Contains(l2Key(i)) {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no key left L1 despite demotions")
	}
	if !store.Contains(l2Key(victim)) {
		t.Fatalf("demoted key %d not in the store", victim)
	}
	pg, ok := c.Lookup(l2Key(victim))
	if !ok || !bytes.Equal(pg.Body, l2Body(victim)) {
		t.Fatalf("disk-tier serve: ok=%v", ok)
	}
	st = c.Stats()
	if st.L2.Hits == 0 {
		t.Fatalf("store answered but counted no hit: %+v", st.L2)
	}
	if st.Promotions == 0 && st.PromoteAborts == 0 && st.L2.Hits > 0 {
		// The serve may legitimately stay disk-resident (budget refusal), but
		// under an 8 KiB budget with ~1 KiB pages the reservation must fit.
		t.Fatalf("promotion neither admitted nor aborted: %+v", st)
	}
}

// TestL2InvalidateWriteSweepsDiskTier pins the tentpole consistency rule:
// a write must remove overlapping pages from BOTH tiers before it returns,
// including pages resident only on disk.
func TestL2InvalidateWriteSweepsDiskTier(t *testing.T) {
	store := newL2Store(t, t.TempDir(), 0)
	c := newTestCache(t, Options{MaxBytes: 4 << 10, L2: store})
	defer c.Close()

	// Enough inserts that the first key is demoted out of L1.
	const n = 12
	for i := 0; i < n; i++ {
		c.Insert(l2Key(i), l2Body(i), "text/html", []analysis.Query{l2Dep(i)}, 0)
	}
	target := -1
	for i := 0; i < n; i++ {
		if !c.Contains(l2Key(i)) && store.Contains(l2Key(i)) {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no disk-only resident key to invalidate")
	}
	n2, err := c.InvalidateWrite(wcap("UPDATE T SET a = ? WHERE b = ?", int64(0), int64(target)))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 1 {
		t.Fatalf("invalidated %d pages, want 1 (disk-only resident)", n2)
	}
	if store.Contains(l2Key(target)) {
		t.Fatal("write returned with the stale page still disk-resident")
	}
	if _, ok := c.Lookup(l2Key(target)); ok {
		t.Fatal("invalidated page served from some tier")
	}
	// The dependency table must be clean for the swept key.
	if st := c.Stats(); st.Invalidations == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestL2WarmRestartNoResurrection is the §3.2 restart property: an
// invalidation acknowledged before a crash must hold across the restart —
// the swept key must not come back from a snapshot, a journal replay, or a
// surviving segment record.
func TestL2WarmRestartNoResurrection(t *testing.T) {
	dir := t.TempDir()
	store := newL2Store(t, dir, 0)
	c := newTestCache(t, Options{L2: store})
	for i := 0; i < 4; i++ {
		c.Insert(l2Key(i), l2Body(i), "text/html", []analysis.Query{l2Dep(i)}, 0)
	}
	if err := c.Close(); err != nil { // clean shutdown: spill + snapshot
		t.Fatal(err)
	}

	// Warm restart: every spilled page must be promotable, bit-exact.
	store = newL2Store(t, dir, 0)
	if st := store.Snapshot(); st.RestoredEntries != 4 {
		t.Fatalf("restored %d entries, want 4", st.RestoredEntries)
	}
	c = newTestCache(t, Options{L2: store})
	for i := 0; i < 4; i++ {
		pg, ok := c.Lookup(l2Key(i))
		if !ok || !bytes.Equal(pg.Body, l2Body(i)) {
			t.Fatalf("warm lookup %d: ok=%v", i, ok)
		}
	}
	if st := c.Stats(); st.Promotions == 0 {
		t.Fatalf("warm hits promoted nothing: %+v", st)
	}

	// Invalidate one key, then crash WITHOUT a clean close. The tombstone
	// was fsync'd before InvalidateWrite returned, so it must survive.
	if n, err := c.InvalidateWrite(wcap("UPDATE T SET a = ? WHERE b = ?", int64(9), int64(2))); err != nil || n != 1 {
		t.Fatalf("invalidate: n=%d err=%v", n, err)
	}
	store.Abandon()

	store = newL2Store(t, dir, 0)
	c = newTestCache(t, Options{L2: store})
	defer c.Close()
	if _, ok := c.Lookup(l2Key(2)); ok {
		t.Fatal("invalidated page resurrected after crash restart")
	}
	for _, i := range []int{0, 1, 3} {
		if pg, ok := c.Lookup(l2Key(i)); !ok || !bytes.Equal(pg.Body, l2Body(i)) {
			t.Fatalf("survivor %d lost or corrupted after crash restart: ok=%v", i, ok)
		}
	}
}

// TestL2FlushSweepsBothTiers: Flush must empty the disk tier too, durably.
func TestL2FlushSweepsBothTiers(t *testing.T) {
	dir := t.TempDir()
	store := newL2Store(t, dir, 0)
	c := newTestCache(t, Options{MaxBytes: 4 << 10, L2: store})
	for i := 0; i < 12; i++ {
		c.Insert(l2Key(i), l2Body(i), "text/html", []analysis.Query{l2Dep(i)}, 0)
	}
	c.Flush()
	st := c.Stats()
	if st.Entries != 0 || st.L2.Entries != 0 {
		t.Fatalf("flush left residents: %+v", st)
	}
	if st.DepTemplates != 0 || st.DepInstances != 0 {
		t.Fatalf("flush left dependency state: %+v", st)
	}
	// The flush marker is durable: even a crash right after must not bring
	// any page back.
	store.Abandon()
	store = newL2Store(t, dir, 0)
	defer store.Close()
	if st := store.Snapshot(); st.Entries != 0 {
		t.Fatalf("flushed pages survived restart: %+v", st)
	}
}

// TestL2DrainBalancesToZero is the byte-accounting audit: after heavy churn
// — gzip variants, demotions, promotions, reinserts, invalidations — a full
// drain must leave every byte counter at exactly zero. Any removal path
// that forgets to release its share shows up here as a residue.
func TestL2DrainBalancesToZero(t *testing.T) {
	store := newL2Store(t, t.TempDir(), 32<<10)
	c := newTestCache(t, Options{MaxBytes: 24 << 10, Gzip: true, GzipMinBytes: 1, L2: store})
	defer c.Close()

	const keys = 40
	for round := 0; round < 6; round++ {
		for i := 0; i < keys; i++ {
			k := l2Key(i)
			if _, ok := c.Lookup(k); !ok { // misses promote or regenerate
				// Compressible body so a gzip variant is built and charged.
				body := []byte(strings.Repeat(fmt.Sprintf("row %d round %d |", i, round), 64))
				c.Insert(k, body, "text/html", []analysis.Query{l2Dep(i % 7)}, 0)
			}
			if i%5 == round%5 {
				// Reinsert over a live entry (replace path + stale-L2 drop).
				c.Insert(k, []byte(strings.Repeat("fresh ", 128)), "text/html",
					[]analysis.Query{l2Dep(i % 7)}, 0)
			}
		}
		if _, err := c.InvalidateWrite(wcap("UPDATE T SET a = ? WHERE b = ?", int64(round), int64(round%7))); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Demotions == 0 || st.GzipCompressions == 0 {
		t.Fatalf("churn did not exercise the paths under audit: %+v", st)
	}

	// Drain: flush both tiers, then verify the ledger is exactly balanced.
	c.Flush()
	st = c.Stats()
	if st.Bytes != 0 {
		t.Fatalf("Bytes leaked: %d after full drain", st.Bytes)
	}
	if st.VariantBytes != 0 {
		t.Fatalf("VariantBytes leaked: %d after full drain", st.VariantBytes)
	}
	if st.Entries != 0 || st.L2.Entries != 0 || st.L2.Bytes != 0 {
		t.Fatalf("residents after drain: %+v", st)
	}
	if st.DepTemplates != 0 || st.DepInstances != 0 {
		t.Fatalf("dependency table not empty after drain: %+v", st)
	}
	if st.ProbationBytes != 0 || st.ProtectedBytes != 0 {
		t.Fatalf("segment byte counters leaked: %+v", st)
	}
	for i, b := range c.ShardBytes() {
		if b != 0 {
			t.Fatalf("shard %d byte counter leaked: %d", i, b)
		}
	}
}

// TestCacheCloseSpillsWithoutPressure: a clean shutdown must spill every
// L1-resident page even when the byte budget never forced a demotion, so
// the next boot serves them without touching the database.
func TestCacheCloseSpillsWithoutPressure(t *testing.T) {
	dir := t.TempDir()
	store := newL2Store(t, dir, 0)
	c := newTestCache(t, Options{L2: store}) // no MaxBytes: nothing evicts
	for i := 0; i < 3; i++ {
		c.Insert(l2Key(i), l2Body(i), "text/html", []analysis.Query{l2Dep(i)}, 0)
	}
	if st := c.Stats(); st.Demotions != 0 {
		t.Fatalf("premature demotions: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	store = newL2Store(t, dir, 0)
	c = newTestCache(t, Options{L2: store})
	defer c.Close()
	for i := 0; i < 3; i++ {
		pg, ok := c.Lookup(l2Key(i))
		if !ok || !bytes.Equal(pg.Body, l2Body(i)) {
			t.Fatalf("spilled page %d not served warm: ok=%v", i, ok)
		}
	}
	if st := c.Stats(); st.Promotions != 3 {
		t.Fatalf("want 3 promotions, got %+v", st)
	}
}

// TestL2TTLCarriesAcrossDemotion: the remaining TTL rides the demoted
// record; an expired disk record is a miss, never a stale serve.
func TestL2TTLCarriesAcrossDemotion(t *testing.T) {
	now := time.Unix(5000, 0)
	clock := func() time.Time { return now }
	store, err := l2.Open(l2.Options{Dir: t.TempDir(), SnapshotInterval: -1, Clock: clock, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCache(t, Options{MaxBytes: 4 << 10, L2: store, Clock: clock})
	defer c.Close()
	const n = 12
	for i := 0; i < n; i++ {
		c.Insert(l2Key(i), l2Body(i), "text/html", nil, time.Minute)
	}
	victim := -1
	for i := 0; i < n; i++ {
		if !c.Contains(l2Key(i)) && store.Contains(l2Key(i)) {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no demoted key")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Lookup(l2Key(victim)); ok {
		t.Fatal("expired disk record served")
	}
}

// TestL2HitPathZeroAlloc guards the tier-attachment constraint: an L1 hit
// must not touch the store (the probe is miss-path only), so attaching a
// disk tier keeps the warm Lookup at 0 allocs/op.
func TestL2HitPathZeroAlloc(t *testing.T) {
	store := newL2Store(t, t.TempDir(), 0)
	c := newTestCache(t, Options{MaxBytes: 1 << 20, L2: store})
	defer c.Close()
	c.Insert("/hot", l2Body(0), "text/html", []analysis.Query{l2Dep(0)}, 0)
	c.Lookup("/hot") // one-time probation->protected promotion
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Lookup("/hot"); !ok {
			t.Fatal("unexpected miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("L1 hit with a disk tier attached allocates %.1f/op, want 0", allocs)
	}
	if st := c.Stats(); st.L2.Hits+st.L2.Misses != 0 {
		t.Fatalf("hit path touched the store: %+v", st.L2)
	}
}
