package qrcache

import (
	"context"
	"fmt"
	"hash/crc32"
	"sync"
	"testing"

	"autowebcache/internal/analysis"
	"autowebcache/internal/memdb"
)

// rowsChecksum folds every cell of a result set into one checksum.
func rowsChecksum(r *memdb.Rows) uint32 {
	h := crc32.NewIEEE()
	for _, row := range r.Data {
		for _, v := range row {
			fmt.Fprintf(h, "%v|", v)
		}
		fmt.Fprint(h, "\n")
	}
	return h.Sum32()
}

// TestHitPathDoesNotScaleAllocations guards the qrcache half of the
// zero-copy rework: a hit returns the stored snapshot by reference, so the
// per-hit allocation count must not grow with the size of the result set
// (the old deep copy allocated one slice per row plus the column slice).
func TestHitPathDoesNotScaleAllocations(t *testing.T) {
	db := memdb.New()
	db.MustCreateTable(memdb.TableSpec{
		Name: "big",
		Columns: []memdb.Column{
			{Name: "id", Type: memdb.TypeInt, AutoIncrement: true},
			{Name: "grp", Type: memdb.TypeInt},
			{Name: "val", Type: memdb.TypeString},
		},
		Indexed: []string{"grp"},
	})
	ctx := context.Background()
	for i := 0; i < 800; i++ {
		if _, err := db.Exec(ctx, "INSERT INTO big (grp, val) VALUES (?, ?)", i%2, "payload"); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := analysis.NewEngine(analysis.StrategyExtraQuery, db)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(db, engine, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the entry (400 rows), then measure the hit path.
	if _, err := c.Query(ctx, "SELECT id, val FROM big WHERE grp = ?", 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		rows, err := c.Query(ctx, "SELECT id, val FROM big WHERE grp = ?", 0)
		if err != nil || rows.Len() != 400 {
			t.Fatalf("hit failed: %v (%d rows)", err, rows.Len())
		}
	})
	// The hit still normalizes args and builds the lookup key (a handful of
	// allocations), but must no longer pay one allocation per row: for a
	// 400-row result set the old copy cost >400 allocs per hit.
	if allocs > 10 {
		t.Fatalf("qrcache hit allocates %.0f objects for a 400-row result, want O(1)", allocs)
	}
}

// TestAliasingStressSharedSnapshots proves the qrcache no-mutation contract
// under -race: concurrent readers hold returned snapshots and re-checksum
// them while a writer churns the table through the caching connection.
// Invalidation removes whole entries, so a held snapshot never changes —
// even after the data it was computed from has been rewritten.
func TestAliasingStressSharedSnapshots(t *testing.T) {
	_, c := newFixture(t, 16)
	ctx := context.Background()
	const (
		readers = 8
		rounds  = 20
	)
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				type held struct {
					rows *memdb.Rows
					sum  uint32
				}
				var pinned []held
				for i := 0; i < 30; i++ {
					grp := (g + i) % 5
					rows, err := c.Query(ctx, "SELECT id, val FROM t WHERE grp = ? ORDER BY id ASC", grp)
					if err != nil {
						t.Error(err)
						return
					}
					sum := rowsChecksum(rows)
					if i%7 == 0 {
						pinned = append(pinned, held{rows: rows, sum: sum})
					}
					// A second checksum of the same view must agree even
					// though other goroutines are writing and invalidating.
					if again := rowsChecksum(rows); again != sum {
						t.Errorf("snapshot changed under a concurrent writer: %08x -> %08x", sum, again)
						return
					}
				}
				for _, h := range pinned {
					if got := rowsChecksum(h.rows); got != h.sum {
						t.Errorf("pinned snapshot mutated: %08x -> %08x", h.sum, got)
						return
					}
				}
			}(g)
		}
		// The writer mutates rows through the caching connection while the
		// readers above hold and re-verify their snapshots.
		if _, err := c.Exec(ctx, "UPDATE t SET val = ? WHERE grp = ?", round*1000, round%5); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}
