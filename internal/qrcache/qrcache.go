// Package qrcache implements the paper's §9 extension: a database
// query-result cache complementary to the web-page cache. It wraps a
// memdb.Conn and caches SELECT result sets keyed by (template, value
// vector), kept strongly consistent by the same query-analysis engine the
// page cache uses — the design of the Middleware 2000 result-set caching
// system the paper compares against ([8]), but driven by AutoWebCache's
// analysis instead of a compiler.
//
// It composes with the weave package: stack it under the RecordingConn
// (weave.NewConn(qrcache.New(db, engine, n), engine)) so pages that the
// front-end cache cannot hold still skip the database on repeated queries.
//
// Like the page cache, the instance map is lock-striped over power-of-two
// shards keyed by an FNV hash of the (template, vector) key, and the
// per-template probe index over shards keyed by the template, so concurrent
// queries on distinct keys never contend. Lock order is always entry shard
// -> template shard, never the reverse.
package qrcache

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"autowebcache/internal/analysis"
	"autowebcache/internal/memdb"
	"autowebcache/internal/sqlparser"
	"autowebcache/internal/stripe"
)

// Stats are cumulative counters of the result cache.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64 // result sets removed by writes
	Evictions     uint64
	Entries       int
}

// entry is one cached result set.
type entry struct {
	key   string // full cache key: template + "\x00" + argsKey
	query analysis.Query
	rows  *memdb.Rows
	el    *list.Element // position in the owning shard's LRU list
	// seq is the entry's position in the global LRU order (refreshed on
	// every hit); the globally-minimal seq is the eviction victim.
	seq uint64
}

// tmplGroup groups a template's cached instances with a per-table probe
// index (same scheme as the page cache's dependency table): instances keyed
// by the value their `table.col = ?` predicate binds, so a write whose
// effect on that column is bounded only tests the matching instances.
type tmplGroup struct {
	info      *analysis.TemplateInfo // nil when unparseable
	instances map[string]*entry      // argsKey -> entry
	probeIdx  map[string]map[string]map[string]*entry
}

func newTmplGroup(info *analysis.TemplateInfo) *tmplGroup {
	return &tmplGroup{
		info:      info,
		instances: make(map[string]*entry),
		probeIdx:  make(map[string]map[string]map[string]*entry),
	}
}

func (g *tmplGroup) add(argsKey string, e *entry) {
	g.instances[argsKey] = e
	if g.info == nil {
		return
	}
	for table, p := range g.info.Probes {
		if p.ArgIndex < 0 || p.ArgIndex >= len(e.query.Args) {
			continue
		}
		key := analysis.ProbeKey(e.query.Args[p.ArgIndex])
		byKey := g.probeIdx[table]
		if byKey == nil {
			byKey = make(map[string]map[string]*entry)
			g.probeIdx[table] = byKey
		}
		byArgs := byKey[key]
		if byArgs == nil {
			byArgs = make(map[string]*entry)
			byKey[key] = byArgs
		}
		byArgs[argsKey] = e
	}
}

func (g *tmplGroup) remove(argsKey string, e *entry) {
	delete(g.instances, argsKey)
	if g.info == nil {
		return
	}
	for table, p := range g.info.Probes {
		if p.ArgIndex < 0 || p.ArgIndex >= len(e.query.Args) {
			continue
		}
		key := analysis.ProbeKey(e.query.Args[p.ArgIndex])
		if byArgs := g.probeIdx[table][key]; byArgs != nil {
			delete(byArgs, argsKey)
			if len(byArgs) == 0 {
				delete(g.probeIdx[table], key)
			}
		}
	}
}

// qrShard is one stripe of the instance map with its slice of the LRU list.
type qrShard struct {
	mu      sync.Mutex
	entries map[string]*entry // full key -> entry
	lru     *list.List        // front = shard's LRU entry; values are *entry
}

// tmplShard is one stripe of the template -> instances index.
type tmplShard struct {
	mu     sync.Mutex
	groups map[string]*tmplGroup
}

// Conn is a caching connection. It is safe for concurrent use.
type Conn struct {
	base   memdb.Conn
	engine *analysis.Engine
	max    int
	mask   uint32

	parse sqlparser.Cache
	canon sync.Map // raw SQL -> canonical template text

	shards     []qrShard
	tmplShards []tmplShard

	seq   atomic.Uint64
	count atomic.Int64

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	evictions     atomic.Uint64
}

var _ memdb.Conn = (*Conn)(nil)

// New wraps base with a result cache of at most maxEntries result sets
// (0 = unbounded). The engine decides write/read intersections. The stripe
// count defaults to GOMAXPROCS rounded to a power of two; use
// NewWithShards to pin it.
func New(base memdb.Conn, engine *analysis.Engine, maxEntries int) (*Conn, error) {
	return NewWithShards(base, engine, maxEntries, 0)
}

// NewWithShards is New with an explicit lock-stripe count (rounded up to a
// power of two; 0 picks GOMAXPROCS rounded likewise).
func NewWithShards(base memdb.Conn, engine *analysis.Engine, maxEntries, shards int) (*Conn, error) {
	if base == nil || engine == nil {
		return nil, fmt.Errorf("qrcache: base connection and engine are required")
	}
	if maxEntries < 0 {
		return nil, fmt.Errorf("qrcache: negative maxEntries")
	}
	if shards < 0 {
		return nil, fmt.Errorf("qrcache: negative shards")
	}
	n := stripe.Count(shards)
	c := &Conn{
		base:       base,
		engine:     engine,
		max:        maxEntries,
		mask:       uint32(n - 1),
		shards:     make([]qrShard, n),
		tmplShards: make([]tmplShard, n),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
		c.shards[i].lru = list.New()
	}
	for i := range c.tmplShards {
		c.tmplShards[i].groups = make(map[string]*tmplGroup)
	}
	return c, nil
}

func (c *Conn) shard(key string) *qrShard {
	return &c.shards[stripe.Hash(key)&c.mask]
}

func (c *Conn) tmplShard(tmpl string) *tmplShard {
	return &c.tmplShards[stripe.Hash(tmpl)&c.mask]
}

// canonicalize maps raw SQL to canonical template text.
func (c *Conn) canonicalize(sql string) (string, error) {
	if got, ok := c.canon.Load(sql); ok {
		return got.(string), nil
	}
	stmt, err := c.parse.Get(sql)
	if err != nil {
		return "", err
	}
	text := stmt.String()
	c.canon.Store(sql, text)
	return text, nil
}

// noStoreKey marks contexts whose queries may be served from the cache but
// must not be inserted — used for the engine's own pre-write extra queries,
// whose results are invalidated moments later by the very write that
// triggered them.
type noStoreKey struct{}

// Query serves a SELECT from the result cache when possible.
//
// Ownership contract: the result set is snapshotted exactly once, when it
// is inserted on a miss; every hit returns that shared immutable snapshot
// by reference, with no per-hit copy of columns or rows. Callers must
// treat the returned Rows as read-only — mutating them is a data race and
// corrupts the cache for every later reader. Invalidation removes whole
// entries and never rewrites rows in place, so a view obtained before an
// invalidation stays valid and self-consistent for as long as it is held.
func (c *Conn) Query(ctx context.Context, sql string, args ...any) (*memdb.Rows, error) {
	tmpl, err := c.canonicalize(sql)
	if err != nil {
		return c.base.Query(ctx, sql, args...) // let the base report the error
	}
	vals, err := memdb.NormalizeAll(args)
	if err != nil {
		return nil, err
	}
	ak := memdb.KeyOfValues(vals)
	key := tmpl + "\x00" + ak

	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		// Recency only matters when eviction can happen; an unbounded cache
		// never consults the list order.
		if c.max > 0 {
			s.lru.MoveToBack(e.el)
			e.seq = c.seq.Add(1)
		}
		rows := e.rows
		s.mu.Unlock()
		c.hits.Add(1)
		// Zero-copy hit: hand out the stored immutable snapshot.
		return rows, nil
	}
	s.mu.Unlock()
	c.misses.Add(1)

	rows, err := c.base.Query(ctx, sql, args...)
	if err != nil {
		return nil, err
	}
	if ctx.Value(noStoreKey{}) != nil {
		return rows, nil
	}
	// Snapshot once at insert; the snapshot is both what the cache stores
	// and what this (missing) caller receives, so hits and the originating
	// miss all share the same immutable data.
	rows = rows.Snapshot()
	e := &entry{key: key, query: analysis.Query{SQL: tmpl, Args: vals}, rows: rows}
	c.reserveSlot()
	s.mu.Lock()
	if cur, exists := s.entries[key]; exists {
		// A concurrent query cached the same instance first; replace it so
		// the reserved slot is accounted to ours.
		c.removeLocked(s, cur)
	}
	e.seq = c.seq.Add(1)
	e.el = s.lru.PushBack(e)
	s.entries[key] = e
	c.addToGroupLocked(tmpl, ak, e)
	s.mu.Unlock()
	return rows, nil
}

// reserveSlot claims one unit of capacity, evicting until a slot is free.
func (c *Conn) reserveSlot() {
	max := int64(c.max)
	if max <= 0 {
		c.count.Add(1)
		return
	}
	for {
		n := c.count.Load()
		if n < max {
			if c.count.CompareAndSwap(n, n+1) {
				return
			}
			continue
		}
		if !c.evictOne() {
			runtime.Gosched() // slots held by in-flight inserts; let them land
		}
	}
}

// addToGroupLocked links an entry into its template group. The caller holds
// the entry's shard lock; the template shard lock nests inside it.
func (c *Conn) addToGroupLocked(tmpl, ak string, e *entry) {
	ts := c.tmplShard(tmpl)
	ts.mu.Lock()
	g := ts.groups[tmpl]
	if g == nil {
		info, ierr := c.engine.Template(tmpl)
		if ierr != nil {
			info = nil
		}
		g = newTmplGroup(info)
		ts.groups[tmpl] = g
	}
	g.add(ak, e)
	ts.mu.Unlock()
}

// Exec forwards a write and invalidates every cached result set the write
// intersects. The capture runs before the write, as the extra-query
// strategy requires.
func (c *Conn) Exec(ctx context.Context, sql string, args ...any) (memdb.Result, error) {
	tmpl, cerr := c.canonicalize(sql)
	var capture analysis.WriteCapture
	captured := false
	if cerr == nil {
		if vals, nerr := memdb.NormalizeAll(args); nerr == nil {
			var err error
			// The extra query runs through the result cache itself (lookup
			// only): when a page-cache layer above has just captured the
			// same write, its identical SELECT is served from here instead
			// of hitting the database twice.
			capture, err = c.engine.CaptureWrite(context.WithValue(ctx, noStoreKey{}, true), c,
				analysis.Query{SQL: tmpl, Args: vals})
			captured = err == nil
		}
	}
	res, err := c.base.Exec(ctx, sql, args...)
	if err != nil {
		return res, err
	}
	if !captured {
		c.flush() // unanalysable write: never serve stale results
		return res, nil
	}
	if _, ierr := c.invalidate(capture); ierr != nil {
		c.flush()
	}
	return res, nil
}

// InvalidateCapture applies a write capture that was analysed elsewhere —
// the remote-invalidation entry point for the cluster peer tier, whose
// broadcasts carry the origin node's capture (including the pre-write
// extra-query snapshot, so the strategy keeps its full precision on every
// node). An unanalysable capture flushes the whole cache: over-invalidation
// is always sound. It returns the number of result sets removed (the whole
// cache's worth on a flush).
func (c *Conn) InvalidateCapture(w analysis.WriteCapture) int {
	n, err := c.invalidate(w)
	if err != nil {
		n = int(c.count.Load())
		c.flush()
	}
	return n
}

// Flush drops every cached result set — the remote-flush entry point.
func (c *Conn) Flush() { c.flush() }

// invalidate removes the result sets the write intersects.
func (c *Conn) invalidate(w analysis.WriteCapture) (int, error) {
	pw, err := c.engine.PrepareWrite(w)
	if err != nil {
		return 0, err
	}
	type cand struct {
		key   string
		query analysis.Query
	}
	// ColumnOnly ignores bound values; the probe index must not narrow it.
	useProbes := c.engine.Strategy() != analysis.StrategyColumnOnly
	var candidates []cand
	for i := range c.tmplShards {
		ts := &c.tmplShards[i]
		ts.mu.Lock()
		for tmpl, g := range ts.groups {
			dep, derr := c.engine.PossiblyDependent(tmpl, w.SQL)
			if derr != nil {
				ts.mu.Unlock()
				return 0, derr
			}
			if !dep {
				continue
			}
			collect := func(ak string, e *entry) {
				candidates = append(candidates, cand{key: tmpl + "\x00" + ak, query: e.query})
			}
			probed := false
			if useProbes && g.info != nil {
				if p, hasProbe := g.info.Probes[pw.Table()]; hasProbe {
					if keys, bounded := pw.ProbeKeys(p.Col); bounded {
						seen := make(map[string]bool)
						for _, key := range keys {
							for ak, e := range g.probeIdx[pw.Table()][key] {
								if !seen[ak] {
									seen[ak] = true
									collect(ak, e)
								}
							}
						}
						probed = true
					}
				}
			}
			if !probed {
				for ak, e := range g.instances {
					collect(ak, e)
				}
			}
		}
		ts.mu.Unlock()
	}

	var victims []string
	for _, cd := range candidates {
		hit, err := pw.Intersects(cd.query)
		if err != nil {
			return 0, err
		}
		if hit {
			victims = append(victims, cd.key)
		}
	}
	n := 0
	for _, key := range victims {
		s := c.shard(key)
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			c.removeLocked(s, e)
			c.invalidations.Add(1)
			n++
		}
		s.mu.Unlock()
	}
	return n, nil
}

// removeLocked unlinks one entry from its shard and template group,
// releasing its capacity slot. The caller holds s.mu; the template shard
// lock nests inside it.
func (c *Conn) removeLocked(s *qrShard, e *entry) {
	delete(s.entries, e.key)
	s.lru.Remove(e.el)
	c.count.Add(-1)
	tmpl := e.query.SQL
	ts := c.tmplShard(tmpl)
	ts.mu.Lock()
	if g := ts.groups[tmpl]; g != nil {
		g.remove(memdb.KeyOfValues(e.query.Args), e)
		if len(g.instances) == 0 {
			delete(ts.groups, tmpl)
		}
	}
	ts.mu.Unlock()
}

// evictOne removes the result set with the globally-minimal LRU sequence,
// locking one shard at a time. It reports whether an entry was removed.
func (c *Conn) evictOne() bool {
	var (
		bestShard *qrShard
		bestKey   string
		bestSeq   uint64
		found     bool
	)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if front := s.lru.Front(); front != nil {
			e := front.Value.(*entry)
			if !found || e.seq < bestSeq {
				found, bestShard, bestKey, bestSeq = true, s, e.key, e.seq
			}
		}
		s.mu.Unlock()
	}
	if !found {
		return false
	}
	bestShard.mu.Lock()
	defer bestShard.mu.Unlock()
	e, ok := bestShard.entries[bestKey]
	if !ok {
		return false // vanished since the scan; caller retries
	}
	c.removeLocked(bestShard, e)
	c.evictions.Add(1)
	return true
}

// flush drops every cached result set, shard by shard through the regular
// removal path so the template index stays consistent.
func (c *Conn) flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for s.lru.Front() != nil {
			c.removeLocked(s, s.lru.Front().Value.(*entry))
		}
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the counters.
func (c *Conn) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
		Entries:       int(c.count.Load()),
	}
}
