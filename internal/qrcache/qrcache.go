// Package qrcache implements the paper's §9 extension: a database
// query-result cache complementary to the web-page cache. It wraps a
// datasource.Conn and caches SELECT result sets keyed by (template, value
// vector), kept strongly consistent by the same query-analysis engine the
// page cache uses — the design of the Middleware 2000 result-set caching
// system the paper compares against ([8]), but driven by AutoWebCache's
// analysis instead of a compiler.
//
// It composes with the weave package: stack it under the RecordingConn
// (weave.NewConn(qrcache.New(db, engine, n), engine)) so pages that the
// front-end cache cannot hold still skip the database on repeated queries.
//
// Like the page cache, the instance map is lock-striped over power-of-two
// shards keyed by an FNV hash of the (template, vector) key, and the
// per-template probe index over shards keyed by the template, so concurrent
// queries on distinct keys never contend. Lock order is always entry shard
// -> template shard, never the reverse.
package qrcache

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"autowebcache/internal/analysis"
	"autowebcache/internal/datasource"
	"autowebcache/internal/sqlparser"
	"autowebcache/internal/stripe"
	"autowebcache/internal/tinylfu"
)

// Stats are cumulative counters of the result cache.
type Stats struct {
	Hits             uint64
	Misses           uint64
	Invalidations    uint64 // result sets removed by writes
	Evictions        uint64
	AdmissionRejects uint64 // inserts refused by the TinyLFU admission filter
	OversizeRejects  uint64 // inserts refused because one result set exceeds MaxBytes
	Entries          int
	// Bytes is the accounted memory charged against Options.MaxBytes: every
	// cached result set's cost plus in-flight insert reservations.
	Bytes int64

	// Per-segment occupancy and eviction splits under byte governance
	// (probation = not yet reused, protected = promoted on first hit). An
	// ungoverned cache reports everything as probation.
	ProbationEntries   int
	ProtectedEntries   int
	ProbationBytes     int64 // linked entry cost only (reservations excluded)
	ProtectedBytes     int64
	EvictionsProbation uint64
	EvictionsProtected uint64
}

// entry is one cached result set.
type entry struct {
	key   string // full cache key: template + "\x00" + argsKey
	query analysis.Query
	rows  *datasource.Rows
	el    *list.Element // position in the owning shard's segment list
	// seq is the entry's position in the global LRU order (refreshed on
	// every hit); the globally-minimal seq is the eviction victim.
	seq uint64
	// cost is the accounted byte size (see resultCost), charged against
	// Options.MaxBytes for the entry's lifetime.
	cost int64
	// protected marks the segment under byte governance: promoted out of
	// probation on first hit, evicted only when probation is empty.
	protected bool
}

// entryOverhead approximates the bookkeeping cost of one cached result set
// beyond its payload: entry struct, map slots, list element, probe-index
// slots.
const entryOverhead = 256

// resultCost is the accounted byte size of one cached result set: the full
// cache key, the snapshotted rows and the fixed overhead.
func resultCost(key string, rows *datasource.Rows) int64 {
	return entryOverhead + int64(len(key)) + rows.ByteSize()
}

// tmplGroup groups a template's cached instances with a per-table probe
// index (same scheme as the page cache's dependency table): instances keyed
// by the value their `table.col = ?` predicate binds, so a write whose
// effect on that column is bounded only tests the matching instances.
type tmplGroup struct {
	info      *analysis.TemplateInfo // nil when unparseable
	instances map[string]*entry      // argsKey -> entry
	probeIdx  map[string]map[string]map[string]*entry
}

func newTmplGroup(info *analysis.TemplateInfo) *tmplGroup {
	return &tmplGroup{
		info:      info,
		instances: make(map[string]*entry),
		probeIdx:  make(map[string]map[string]map[string]*entry),
	}
}

func (g *tmplGroup) add(argsKey string, e *entry) {
	g.instances[argsKey] = e
	if g.info == nil {
		return
	}
	for table, p := range g.info.Probes {
		if p.ArgIndex < 0 || p.ArgIndex >= len(e.query.Args) {
			continue
		}
		key := analysis.ProbeKey(e.query.Args[p.ArgIndex])
		byKey := g.probeIdx[table]
		if byKey == nil {
			byKey = make(map[string]map[string]*entry)
			g.probeIdx[table] = byKey
		}
		byArgs := byKey[key]
		if byArgs == nil {
			byArgs = make(map[string]*entry)
			byKey[key] = byArgs
		}
		byArgs[argsKey] = e
	}
}

func (g *tmplGroup) remove(argsKey string, e *entry) {
	delete(g.instances, argsKey)
	if g.info == nil {
		return
	}
	for table, p := range g.info.Probes {
		if p.ArgIndex < 0 || p.ArgIndex >= len(e.query.Args) {
			continue
		}
		key := analysis.ProbeKey(e.query.Args[p.ArgIndex])
		if byArgs := g.probeIdx[table][key]; byArgs != nil {
			delete(byArgs, argsKey)
			if len(byArgs) == 0 {
				delete(g.probeIdx[table], key)
			}
		}
	}
}

// qrShard is one stripe of the instance map with its slice of the LRU list.
type qrShard struct {
	mu      sync.Mutex
	entries map[string]*entry // full key -> entry
	lru     *list.List        // probation segment: front = shard's LRU entry
	// prot is the protected segment, populated only under byte governance:
	// entries move here on their first hit and are evicted only when every
	// probation segment is empty.
	prot *list.List
	// bytes is this shard's share of the accounted memory (linked entries
	// only; in-flight reservations live in the cache-wide counter);
	// protBytes is the subset linked into the protected segment.
	bytes     atomic.Int64
	protBytes atomic.Int64
}

// tmplShard is one stripe of the template -> instances index.
type tmplShard struct {
	mu     sync.Mutex
	groups map[string]*tmplGroup
}

// Options configures a Conn's bounds (the governance mirror of the page
// cache's Options).
type Options struct {
	// MaxEntries bounds the number of cached result sets; 0 = unbounded.
	MaxEntries int
	// MaxBytes bounds the accounted memory of cached result sets (key +
	// snapshotted rows + bookkeeping overhead); 0 = unbounded. Setting it
	// also enables segmented (probation/protected) eviction. A single
	// result set costing more than MaxBytes is served but never cached.
	MaxBytes int64
	// Admission gates inserts under byte-budget pressure with a TinyLFU
	// filter: at MaxBytes, a result set is admitted only when its estimated
	// query frequency strictly beats the eviction victim's. Requires
	// MaxBytes > 0.
	Admission bool
	// Shards is the lock-stripe count, rounded up to a power of two
	// (0 picks GOMAXPROCS rounded likewise).
	Shards int
}

// Conn is a caching connection. It is safe for concurrent use.
type Conn struct {
	base   datasource.Conn
	engine *analysis.Engine
	opts   Options
	mask   uint32

	parse sqlparser.Cache
	canon sync.Map // raw SQL -> canonical template text

	shards     []qrShard
	tmplShards []tmplShard

	seq   atomic.Uint64
	count atomic.Int64

	// bytesUsed is the byte-budget authority: linked entry costs plus
	// in-flight insert reservations, CAS-reserved so MaxBytes is never
	// exceeded, even transiently.
	bytesUsed atomic.Int64

	// admit is the TinyLFU admission filter (nil unless Options.Admission).
	admit *tinylfu.Filter

	hits             atomic.Uint64
	misses           atomic.Uint64
	invalidations    atomic.Uint64
	evictions        atomic.Uint64
	evictionsProt    atomic.Uint64 // subset of evictions taken from the protected segment
	admissionRejects atomic.Uint64
	oversizeRejects  atomic.Uint64
}

var _ datasource.Conn = (*Conn)(nil)

// New wraps base with a result cache of at most maxEntries result sets
// (0 = unbounded). The engine decides write/read intersections. The stripe
// count defaults to GOMAXPROCS rounded to a power of two; use
// NewWithOptions to pin it or to set a byte budget.
func New(base datasource.Conn, engine *analysis.Engine, maxEntries int) (*Conn, error) {
	return NewWithOptions(base, engine, Options{MaxEntries: maxEntries})
}

// NewWithShards is New with an explicit lock-stripe count (rounded up to a
// power of two; 0 picks GOMAXPROCS rounded likewise).
func NewWithShards(base datasource.Conn, engine *analysis.Engine, maxEntries, shards int) (*Conn, error) {
	return NewWithOptions(base, engine, Options{MaxEntries: maxEntries, Shards: shards})
}

// NewWithOptions is the full constructor: entry and byte bounds, admission
// filtering and the stripe count.
func NewWithOptions(base datasource.Conn, engine *analysis.Engine, opts Options) (*Conn, error) {
	if base == nil || engine == nil {
		return nil, fmt.Errorf("qrcache: base connection and engine are required")
	}
	if opts.MaxEntries < 0 {
		return nil, fmt.Errorf("qrcache: negative MaxEntries")
	}
	if opts.MaxBytes < 0 {
		return nil, fmt.Errorf("qrcache: negative MaxBytes")
	}
	if opts.Admission && opts.MaxBytes <= 0 {
		return nil, fmt.Errorf("qrcache: Admission requires MaxBytes (the filter gates byte-budget pressure)")
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("qrcache: negative Shards")
	}
	n := stripe.Count(opts.Shards)
	c := &Conn{
		base:       base,
		engine:     engine,
		opts:       opts,
		mask:       uint32(n - 1),
		shards:     make([]qrShard, n),
		tmplShards: make([]tmplShard, n),
	}
	if opts.Admission {
		counters := opts.MaxEntries
		if counters == 0 {
			// Assume modest result sets when only the byte bound is known.
			counters = int(min(opts.MaxBytes/1024, 1<<20))
		}
		c.admit = tinylfu.New(counters)
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
		c.shards[i].lru = list.New()
		c.shards[i].prot = list.New()
	}
	for i := range c.tmplShards {
		c.tmplShards[i].groups = make(map[string]*tmplGroup)
	}
	return c, nil
}

// segmented reports whether probation/protected eviction is active.
func (c *Conn) segmented() bool { return c.opts.MaxBytes > 0 }

func (c *Conn) shard(key string) *qrShard {
	return &c.shards[stripe.Hash(key)&c.mask]
}

func (c *Conn) tmplShard(tmpl string) *tmplShard {
	return &c.tmplShards[stripe.Hash(tmpl)&c.mask]
}

// canonicalize maps raw SQL to canonical template text.
func (c *Conn) canonicalize(sql string) (string, error) {
	if got, ok := c.canon.Load(sql); ok {
		return got.(string), nil
	}
	stmt, err := c.parse.Get(sql)
	if err != nil {
		return "", err
	}
	text := stmt.String()
	c.canon.Store(sql, text)
	return text, nil
}

// noStoreKey marks contexts whose queries may be served from the cache but
// must not be inserted — used for the engine's own pre-write extra queries,
// whose results are invalidated moments later by the very write that
// triggered them.
type noStoreKey struct{}

// Query serves a SELECT from the result cache when possible.
//
// Ownership contract: the result set is snapshotted exactly once, when it
// is inserted on a miss; every hit returns that shared immutable snapshot
// by reference, with no per-hit copy of columns or rows. Callers must
// treat the returned Rows as read-only — mutating them is a data race and
// corrupts the cache for every later reader. Invalidation removes whole
// entries and never rewrites rows in place, so a view obtained before an
// invalidation stays valid and self-consistent for as long as it is held.
func (c *Conn) Query(ctx context.Context, sql string, args ...any) (*datasource.Rows, error) {
	tmpl, err := c.canonicalize(sql)
	if err != nil {
		return c.base.Query(ctx, sql, args...) // let the base report the error
	}
	vals, err := datasource.NormalizeAll(args)
	if err != nil {
		return nil, err
	}
	ak := datasource.KeyOfValues(vals)
	key := tmpl + "\x00" + ak

	// Every lookup — hit or miss — feeds the admission filter's frequency
	// estimate, so a query's popularity is known before its result set is
	// ever cached.
	if c.admit != nil {
		c.admit.Touch(tinylfu.HashString(key))
	}
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		// Recency only matters when eviction can happen; an unbounded cache
		// never consults the list order.
		if c.segmented() && !e.protected {
			// First reuse: promote out of probation (one-time list element).
			s.lru.Remove(e.el)
			e.el = s.prot.PushBack(e)
			e.protected = true
			s.protBytes.Add(e.cost)
			e.seq = c.seq.Add(1)
		} else if c.opts.MaxEntries > 0 || c.opts.MaxBytes > 0 {
			if e.protected {
				s.prot.MoveToBack(e.el)
			} else {
				s.lru.MoveToBack(e.el)
			}
			e.seq = c.seq.Add(1)
		}
		rows := e.rows
		s.mu.Unlock()
		c.hits.Add(1)
		// Zero-copy hit: hand out the stored immutable snapshot.
		return rows, nil
	}
	s.mu.Unlock()
	c.misses.Add(1)

	rows, err := c.base.Query(ctx, sql, args...)
	if err != nil {
		return nil, err
	}
	if ctx.Value(noStoreKey{}) != nil {
		return rows, nil
	}
	// The byte reservation precedes the snapshot copy: a result set the
	// budget refuses (oversize, or colder than every victim) is returned
	// to the caller uncopied and simply not cached.
	cost := resultCost(key, rows)
	if !c.reserveBytes(cost, key) {
		return rows, nil
	}
	// Snapshot once at insert; the snapshot is both what the cache stores
	// and what this (missing) caller receives, so hits and the originating
	// miss all share the same immutable data.
	rows = rows.Snapshot()
	e := &entry{key: key, query: analysis.Query{SQL: tmpl, Args: vals}, rows: rows, cost: cost}
	c.reserveSlot()
	s.mu.Lock()
	if cur, exists := s.entries[key]; exists {
		// A concurrent query cached the same instance first; replace it so
		// the reserved slot is accounted to ours.
		c.removeLocked(s, cur)
	}
	e.seq = c.seq.Add(1)
	e.el = s.lru.PushBack(e)
	s.entries[key] = e
	s.bytes.Add(e.cost)
	c.addToGroupLocked(tmpl, ak, e)
	s.mu.Unlock()
	return rows, nil
}

// reserveSlot claims one unit of capacity, evicting until a slot is free.
func (c *Conn) reserveSlot() {
	max := int64(c.opts.MaxEntries)
	if max <= 0 {
		c.count.Add(1)
		return
	}
	for {
		n := c.count.Load()
		if n < max {
			if c.count.CompareAndSwap(n, n+1) {
				return
			}
			continue
		}
		if !c.evictOne() {
			runtime.Gosched() // slots held by in-flight inserts; let them land
		}
	}
}

// reserveBytes claims cost bytes of the MaxBytes budget, evicting LRU
// victims (probation first) until the reservation fits. Returns false —
// holding no reservation — when the result set can never fit or the
// admission filter sides with a victim. The claimed bytes are credited
// back by removeLocked at removal.
func (c *Conn) reserveBytes(cost int64, key string) bool {
	max := c.opts.MaxBytes
	if max <= 0 {
		c.bytesUsed.Add(cost)
		return true
	}
	if cost > max {
		c.oversizeRejects.Add(1)
		return false
	}
	var keyHash uint64
	hashed := false
	for {
		n := c.bytesUsed.Load()
		if n+cost <= max {
			if c.bytesUsed.CompareAndSwap(n, n+cost) {
				return true
			}
			continue
		}
		v, ok := c.pickVictim()
		if !ok {
			runtime.Gosched() // all bytes held by in-flight inserts
			continue
		}
		if c.admit != nil {
			if !hashed {
				keyHash = tinylfu.HashString(key)
				hashed = true
			}
			if !c.admit.Admit(keyHash, tinylfu.HashString(v.key)) {
				c.admissionRejects.Add(1)
				return false
			}
		}
		c.evictPick(v)
	}
}

// addToGroupLocked links an entry into its template group. The caller holds
// the entry's shard lock; the template shard lock nests inside it.
func (c *Conn) addToGroupLocked(tmpl, ak string, e *entry) {
	ts := c.tmplShard(tmpl)
	ts.mu.Lock()
	g := ts.groups[tmpl]
	if g == nil {
		info, ierr := c.engine.Template(tmpl)
		if ierr != nil {
			info = nil
		}
		g = newTmplGroup(info)
		ts.groups[tmpl] = g
	}
	g.add(ak, e)
	ts.mu.Unlock()
}

// Exec forwards a write and invalidates every cached result set the write
// intersects. The capture runs before the write, as the extra-query
// strategy requires.
func (c *Conn) Exec(ctx context.Context, sql string, args ...any) (datasource.Result, error) {
	tmpl, cerr := c.canonicalize(sql)
	var capture analysis.WriteCapture
	captured := false
	if cerr == nil {
		if vals, nerr := datasource.NormalizeAll(args); nerr == nil {
			var err error
			// The extra query runs through the result cache itself (lookup
			// only): when a page-cache layer above has just captured the
			// same write, its identical SELECT is served from here instead
			// of hitting the database twice.
			capture, err = c.engine.CaptureWrite(context.WithValue(ctx, noStoreKey{}, true), c,
				analysis.Query{SQL: tmpl, Args: vals})
			captured = err == nil
		}
	}
	res, err := c.base.Exec(ctx, sql, args...)
	if err != nil {
		return res, err
	}
	if !captured {
		c.flush() // unanalysable write: never serve stale results
		return res, nil
	}
	if _, ierr := c.invalidate(capture); ierr != nil {
		c.flush()
	}
	return res, nil
}

// InvalidateCapture applies a write capture that was analysed elsewhere —
// the remote-invalidation entry point for the cluster peer tier, whose
// broadcasts carry the origin node's capture (including the pre-write
// extra-query snapshot, so the strategy keeps its full precision on every
// node). An unanalysable capture flushes the whole cache: over-invalidation
// is always sound. It returns the number of result sets removed (the whole
// cache's worth on a flush).
func (c *Conn) InvalidateCapture(w analysis.WriteCapture) int {
	n, err := c.invalidate(w)
	if err != nil {
		n = int(c.count.Load())
		c.flush()
	}
	return n
}

// Flush drops every cached result set — the remote-flush entry point.
func (c *Conn) Flush() { c.flush() }

// invalidate removes the result sets the write intersects.
func (c *Conn) invalidate(w analysis.WriteCapture) (int, error) {
	pw, err := c.engine.PrepareWrite(w)
	if err != nil {
		return 0, err
	}
	type cand struct {
		key   string
		query analysis.Query
	}
	// ColumnOnly ignores bound values; the probe index must not narrow it.
	useProbes := c.engine.Strategy() != analysis.StrategyColumnOnly
	var candidates []cand
	for i := range c.tmplShards {
		ts := &c.tmplShards[i]
		ts.mu.Lock()
		for tmpl, g := range ts.groups {
			dep, derr := c.engine.PossiblyDependent(tmpl, w.SQL)
			if derr != nil {
				ts.mu.Unlock()
				return 0, derr
			}
			if !dep {
				continue
			}
			collect := func(ak string, e *entry) {
				candidates = append(candidates, cand{key: tmpl + "\x00" + ak, query: e.query})
			}
			probed := false
			if useProbes && g.info != nil {
				if p, hasProbe := g.info.Probes[pw.Table()]; hasProbe {
					if keys, bounded := pw.ProbeKeys(p.Col); bounded {
						seen := make(map[string]bool)
						for _, key := range keys {
							for ak, e := range g.probeIdx[pw.Table()][key] {
								if !seen[ak] {
									seen[ak] = true
									collect(ak, e)
								}
							}
						}
						probed = true
					}
				}
			}
			if !probed {
				for ak, e := range g.instances {
					collect(ak, e)
				}
			}
		}
		ts.mu.Unlock()
	}

	var victims []string
	for _, cd := range candidates {
		hit, err := pw.Intersects(cd.query)
		if err != nil {
			return 0, err
		}
		if hit {
			victims = append(victims, cd.key)
		}
	}
	n := 0
	for _, key := range victims {
		s := c.shard(key)
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			c.removeLocked(s, e)
			c.invalidations.Add(1)
			n++
		}
		s.mu.Unlock()
	}
	return n, nil
}

// removeLocked unlinks one entry from its shard and template group,
// releasing its capacity slot and crediting its byte cost. The caller holds
// s.mu; the template shard lock nests inside it.
func (c *Conn) removeLocked(s *qrShard, e *entry) {
	delete(s.entries, e.key)
	if e.protected {
		s.prot.Remove(e.el)
		s.protBytes.Add(-e.cost)
	} else {
		s.lru.Remove(e.el)
	}
	s.bytes.Add(-e.cost)
	c.bytesUsed.Add(-e.cost)
	c.count.Add(-1)
	tmpl := e.query.SQL
	ts := c.tmplShard(tmpl)
	ts.mu.Lock()
	if g := ts.groups[tmpl]; g != nil {
		g.remove(datasource.KeyOfValues(e.query.Args), e)
		if len(g.instances) == 0 {
			delete(ts.groups, tmpl)
		}
	}
	ts.mu.Unlock()
}

// victim identifies one eviction candidate found by a cross-shard scan.
type victim struct {
	shard *qrShard
	key   string
	seq   uint64
}

// evictOne removes the result set with the globally-minimal LRU sequence.
// It reports whether an entry was removed.
func (c *Conn) evictOne() bool {
	v, ok := c.pickVictim()
	if !ok {
		return false
	}
	return c.evictPick(v)
}

// pickVictim scans for the globally-minimal-seq entry, locking one shard at
// a time. Under segmented eviction the probation segments are exhausted
// before any protected entry is considered.
func (c *Conn) pickVictim() (victim, bool) {
	if v, ok := c.scanSegment(false); ok {
		return v, true
	}
	if c.segmented() {
		return c.scanSegment(true)
	}
	return victim{}, false
}

// scanSegment finds the minimal-seq entry within one segment across shards.
func (c *Conn) scanSegment(protected bool) (victim, bool) {
	var best victim
	found := false
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		l := s.lru
		if protected {
			l = s.prot
		}
		if front := l.Front(); front != nil {
			e := front.Value.(*entry)
			if !found || e.seq < best.seq {
				found, best = true, victim{shard: s, key: e.key, seq: e.seq}
			}
		}
		s.mu.Unlock()
	}
	return best, found
}

// evictPick re-locks the picked shard and evicts the victim. It reports
// whether an entry was removed.
func (c *Conn) evictPick(v victim) bool {
	v.shard.mu.Lock()
	defer v.shard.mu.Unlock()
	e, ok := v.shard.entries[v.key]
	if !ok {
		return false // vanished since the scan; caller retries
	}
	fromProtected := e.protected
	c.removeLocked(v.shard, e)
	c.evictions.Add(1)
	if fromProtected {
		c.evictionsProt.Add(1)
	}
	return true
}

// flush drops every cached result set, shard by shard through the regular
// removal path so the template index stays consistent.
func (c *Conn) flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for s.lru.Front() != nil {
			c.removeLocked(s, s.lru.Front().Value.(*entry))
		}
		for s.prot.Front() != nil {
			c.removeLocked(s, s.prot.Front().Value.(*entry))
		}
		s.mu.Unlock()
	}
}

// Bytes returns the accounted memory currently charged against MaxBytes.
func (c *Conn) Bytes() int64 { return c.bytesUsed.Load() }

// ShardBytes returns the per-shard accounted byte counters — the summed
// cost of the entries linked into each shard (in-flight reservations are
// carried only by the cache-wide counter, so the slice sums to at most
// Bytes). Diagnostic: a skewed distribution means a hot template region.
func (c *Conn) ShardBytes() []int64 {
	out := make([]int64, len(c.shards))
	for i := range c.shards {
		out[i] = c.shards[i].bytes.Load()
	}
	return out
}

// Snapshot returns a point-in-time copy of the counters — the canonical
// stats accessor shared by every layer; the telemetry collectors consume
// it.
func (c *Conn) Snapshot() Stats {
	st := Stats{
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Invalidations:      c.invalidations.Load(),
		Evictions:          c.evictions.Load(),
		EvictionsProtected: c.evictionsProt.Load(),
		AdmissionRejects:   c.admissionRejects.Load(),
		OversizeRejects:    c.oversizeRejects.Load(),
		Entries:            int(c.count.Load()),
		Bytes:              c.bytesUsed.Load(),
	}
	st.EvictionsProbation = st.Evictions - st.EvictionsProtected
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.ProbationEntries += s.lru.Len()
		st.ProtectedEntries += s.prot.Len()
		pb := s.protBytes.Load()
		st.ProtectedBytes += pb
		st.ProbationBytes += s.bytes.Load() - pb
		s.mu.Unlock()
	}
	return st
}

// Stats is Snapshot under its historical name.
func (c *Conn) Stats() Stats { return c.Snapshot() }
