// Package qrcache implements the paper's §9 extension: a database
// query-result cache complementary to the web-page cache. It wraps a
// memdb.Conn and caches SELECT result sets keyed by (template, value
// vector), kept strongly consistent by the same query-analysis engine the
// page cache uses — the design of the Middleware 2000 result-set caching
// system the paper compares against ([8]), but driven by AutoWebCache's
// analysis instead of a compiler.
//
// It composes with the weave package: stack it under the RecordingConn
// (weave.NewConn(qrcache.New(db, engine, n), engine)) so pages that the
// front-end cache cannot hold still skip the database on repeated queries.
package qrcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"autowebcache/internal/analysis"
	"autowebcache/internal/memdb"
	"autowebcache/internal/sqlparser"
)

// Stats are cumulative counters of the result cache.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64 // result sets removed by writes
	Evictions     uint64
	Entries       int
}

// entry is one cached result set.
type entry struct {
	query analysis.Query
	rows  *memdb.Rows
	el    *list.Element // position in the LRU list
}

// tmplGroup groups a template's cached instances with a per-table probe
// index (same scheme as the page cache's dependency table): instances keyed
// by the value their `table.col = ?` predicate binds, so a write whose
// effect on that column is bounded only tests the matching instances.
type tmplGroup struct {
	info      *analysis.TemplateInfo // nil when unparseable
	instances map[string]*entry      // argsKey -> entry
	probeIdx  map[string]map[string]map[string]*entry
}

func newTmplGroup(info *analysis.TemplateInfo) *tmplGroup {
	return &tmplGroup{
		info:      info,
		instances: make(map[string]*entry),
		probeIdx:  make(map[string]map[string]map[string]*entry),
	}
}

func (g *tmplGroup) add(argsKey string, e *entry) {
	g.instances[argsKey] = e
	if g.info == nil {
		return
	}
	for table, p := range g.info.Probes {
		if p.ArgIndex < 0 || p.ArgIndex >= len(e.query.Args) {
			continue
		}
		key := analysis.ProbeKey(e.query.Args[p.ArgIndex])
		byKey := g.probeIdx[table]
		if byKey == nil {
			byKey = make(map[string]map[string]*entry)
			g.probeIdx[table] = byKey
		}
		byArgs := byKey[key]
		if byArgs == nil {
			byArgs = make(map[string]*entry)
			byKey[key] = byArgs
		}
		byArgs[argsKey] = e
	}
}

func (g *tmplGroup) remove(argsKey string, e *entry) {
	delete(g.instances, argsKey)
	if g.info == nil {
		return
	}
	for table, p := range g.info.Probes {
		if p.ArgIndex < 0 || p.ArgIndex >= len(e.query.Args) {
			continue
		}
		key := analysis.ProbeKey(e.query.Args[p.ArgIndex])
		if byArgs := g.probeIdx[table][key]; byArgs != nil {
			delete(byArgs, argsKey)
			if len(byArgs) == 0 {
				delete(g.probeIdx[table], key)
			}
		}
	}
}

// Conn is a caching connection. It is safe for concurrent use.
type Conn struct {
	base   memdb.Conn
	engine *analysis.Engine
	max    int

	parse   sqlparser.Cache
	canonMu sync.RWMutex
	canon   map[string]string

	mu         sync.Mutex
	entries    map[string]*entry     // full key -> entry
	byTemplate map[string]*tmplGroup // template -> instances + probe indexes
	lru        *list.List            // front = next victim; values are full keys

	hits          uint64
	misses        uint64
	invalidations uint64
	evictions     uint64
}

var _ memdb.Conn = (*Conn)(nil)

// New wraps base with a result cache of at most maxEntries result sets
// (0 = unbounded). The engine decides write/read intersections.
func New(base memdb.Conn, engine *analysis.Engine, maxEntries int) (*Conn, error) {
	if base == nil || engine == nil {
		return nil, fmt.Errorf("qrcache: base connection and engine are required")
	}
	if maxEntries < 0 {
		return nil, fmt.Errorf("qrcache: negative maxEntries")
	}
	return &Conn{
		base:       base,
		engine:     engine,
		max:        maxEntries,
		canon:      make(map[string]string),
		entries:    make(map[string]*entry),
		byTemplate: make(map[string]*tmplGroup),
		lru:        list.New(),
	}, nil
}

// canonicalize maps raw SQL to canonical template text.
func (c *Conn) canonicalize(sql string) (string, error) {
	c.canonMu.RLock()
	got, ok := c.canon[sql]
	c.canonMu.RUnlock()
	if ok {
		return got, nil
	}
	stmt, err := c.parse.Get(sql)
	if err != nil {
		return "", err
	}
	text := stmt.String()
	c.canonMu.Lock()
	c.canon[sql] = text
	c.canonMu.Unlock()
	return text, nil
}

// noStoreKey marks contexts whose queries may be served from the cache but
// must not be inserted — used for the engine's own pre-write extra queries,
// whose results are invalidated moments later by the very write that
// triggered them.
type noStoreKey struct{}

// copyRows deep-copies a result set so cached data never aliases callers.
func copyRows(r *memdb.Rows) *memdb.Rows {
	out := &memdb.Rows{
		Columns: append([]string(nil), r.Columns...),
		Data:    make([][]memdb.Value, len(r.Data)),
	}
	for i, row := range r.Data {
		out.Data[i] = append([]memdb.Value(nil), row...)
	}
	return out
}

// Query serves a SELECT from the result cache when possible.
func (c *Conn) Query(ctx context.Context, sql string, args ...any) (*memdb.Rows, error) {
	tmpl, err := c.canonicalize(sql)
	if err != nil {
		return c.base.Query(ctx, sql, args...) // let the base report the error
	}
	vals, err := memdb.NormalizeAll(args)
	if err != nil {
		return nil, err
	}
	ak := memdb.KeyOfValues(vals)
	key := tmpl + "\x00" + ak

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToBack(e.el)
		rows := copyRows(e.rows)
		c.mu.Unlock()
		return rows, nil
	}
	c.misses++
	c.mu.Unlock()

	rows, err := c.base.Query(ctx, sql, args...)
	if err != nil {
		return nil, err
	}
	if ctx.Value(noStoreKey{}) != nil {
		return rows, nil
	}
	e := &entry{query: analysis.Query{SQL: tmpl, Args: vals}, rows: copyRows(rows)}
	c.mu.Lock()
	if _, exists := c.entries[key]; !exists {
		if c.max > 0 {
			for len(c.entries) >= c.max {
				c.evictOneLocked()
			}
		}
		e.el = c.lru.PushBack(key)
		c.entries[key] = e
		g := c.byTemplate[tmpl]
		if g == nil {
			info, ierr := c.engine.Template(tmpl)
			if ierr != nil {
				info = nil
			}
			g = newTmplGroup(info)
			c.byTemplate[tmpl] = g
		}
		g.add(ak, e)
	}
	c.mu.Unlock()
	return rows, nil
}

// Exec forwards a write and invalidates every cached result set the write
// intersects. The capture runs before the write, as the extra-query
// strategy requires.
func (c *Conn) Exec(ctx context.Context, sql string, args ...any) (memdb.Result, error) {
	tmpl, cerr := c.canonicalize(sql)
	var capture analysis.WriteCapture
	captured := false
	if cerr == nil {
		if vals, nerr := memdb.NormalizeAll(args); nerr == nil {
			var err error
			// The extra query runs through the result cache itself (lookup
			// only): when a page-cache layer above has just captured the
			// same write, its identical SELECT is served from here instead
			// of hitting the database twice.
			capture, err = c.engine.CaptureWrite(context.WithValue(ctx, noStoreKey{}, true), c,
				analysis.Query{SQL: tmpl, Args: vals})
			captured = err == nil
		}
	}
	res, err := c.base.Exec(ctx, sql, args...)
	if err != nil {
		return res, err
	}
	if !captured {
		c.flush() // unanalysable write: never serve stale results
		return res, nil
	}
	if _, ierr := c.invalidate(capture); ierr != nil {
		c.flush()
	}
	return res, nil
}

// invalidate removes the result sets the write intersects.
func (c *Conn) invalidate(w analysis.WriteCapture) (int, error) {
	pw, err := c.engine.PrepareWrite(w)
	if err != nil {
		return 0, err
	}
	type cand struct {
		key   string
		query analysis.Query
	}
	// ColumnOnly ignores bound values; the probe index must not narrow it.
	useProbes := c.engine.Strategy() != analysis.StrategyColumnOnly
	c.mu.Lock()
	var candidates []cand
	for tmpl, g := range c.byTemplate {
		dep, err := c.engine.PossiblyDependent(tmpl, w.SQL)
		if err != nil {
			c.mu.Unlock()
			return 0, err
		}
		if !dep {
			continue
		}
		collect := func(ak string, e *entry) {
			candidates = append(candidates, cand{key: tmpl + "\x00" + ak, query: e.query})
		}
		probed := false
		if useProbes && g.info != nil {
			if p, hasProbe := g.info.Probes[pw.Table()]; hasProbe {
				if keys, bounded := pw.ProbeKeys(p.Col); bounded {
					seen := make(map[string]bool)
					for _, key := range keys {
						for ak, e := range g.probeIdx[pw.Table()][key] {
							if !seen[ak] {
								seen[ak] = true
								collect(ak, e)
							}
						}
					}
					probed = true
				}
			}
		}
		if !probed {
			for ak, e := range g.instances {
				collect(ak, e)
			}
		}
	}
	c.mu.Unlock()

	var victims []string
	for _, cd := range candidates {
		hit, err := pw.Intersects(cd.query)
		if err != nil {
			return 0, err
		}
		if hit {
			victims = append(victims, cd.key)
		}
	}
	n := 0
	c.mu.Lock()
	for _, key := range victims {
		if c.removeLocked(key) {
			c.invalidations++
			n++
		}
	}
	c.mu.Unlock()
	return n, nil
}

// removeLocked unlinks one entry; the caller holds c.mu.
func (c *Conn) removeLocked(key string) bool {
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	delete(c.entries, key)
	c.lru.Remove(e.el)
	tmpl := e.query.SQL
	if g := c.byTemplate[tmpl]; g != nil {
		g.remove(memdb.KeyOfValues(e.query.Args), e)
		if len(g.instances) == 0 {
			delete(c.byTemplate, tmpl)
		}
	}
	return true
}

func (c *Conn) evictOneLocked() {
	front := c.lru.Front()
	if front == nil {
		return
	}
	if c.removeLocked(front.Value.(string)) {
		c.evictions++
	}
}

// flush drops every cached result set.
func (c *Conn) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*entry)
	c.byTemplate = make(map[string]*tmplGroup)
	c.lru = list.New()
}

// Stats returns a snapshot of the counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Entries:       len(c.entries),
	}
}
