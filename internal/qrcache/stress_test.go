package qrcache

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressConsistencyParallel is the parallel version of the sequential
// consistency property: within a round, parallel clients issue overlapping
// cached reads and compare every result against the raw database (which is
// quiescent during the round, so cached and raw must agree exactly);
// between rounds a writer mutates rows through the caching connection. Any
// result set surviving its invalidating write fails the comparison in the
// next round.
func TestStressConsistencyParallel(t *testing.T) {
	db, c := newFixture(t, 0)
	ctx := context.Background()
	reads := []string{
		"SELECT val FROM t WHERE grp = ? ORDER BY id ASC",
		"SELECT COUNT(*) FROM t WHERE grp = ?",
		"SELECT id, val FROM t WHERE val < ? ORDER BY id ASC",
	}
	const (
		clients = 8
		rounds  = 25
	)
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		var failed atomic.Bool
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 40 && !failed.Load(); i++ {
					sql := reads[(g+i)%len(reads)]
					arg := (g*11 + i) % 40
					got, err := c.Query(ctx, sql, arg)
					if err != nil {
						failed.Store(true)
						t.Errorf("round %d: %v", round, err)
						return
					}
					want, err := db.Query(ctx, sql, arg)
					if err != nil {
						failed.Store(true)
						t.Errorf("round %d: %v", round, err)
						return
					}
					if !reflect.DeepEqual(got.Data, want.Data) {
						failed.Store(true)
						t.Errorf("round %d: stale result for %q(%d):\n got %v\nwant %v",
							round, sql, arg, got.Data, want.Data)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		// Mutate between rounds: the Exec path must invalidate every cached
		// result the write intersects before returning.
		switch round % 3 {
		case 0:
			if _, err := c.Exec(ctx, "UPDATE t SET val = ? WHERE grp = ?", round, round%5); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, err := c.Exec(ctx, "INSERT INTO t (grp, val) VALUES (?, ?)", round%5, round); err != nil {
				t.Fatal(err)
			}
		default:
			if _, err := c.Exec(ctx, "DELETE FROM t WHERE id = ?", 1+round); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Fatal("no hits; property not exercised")
	}
}

// TestStressParallelMixed races reads and writes through the caching
// connection with no barriers (exercising the shard locks under -race) and
// then verifies the cache converges to ground truth once writes stop.
func TestStressParallelMixed(t *testing.T) {
	db, c := newFixture(t, 0)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				if (g+i)%9 == 0 {
					if _, err := c.Exec(ctx, "UPDATE t SET val = ? WHERE grp = ?", i, (g+i)%5); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := c.Query(ctx, "SELECT val FROM t WHERE grp = ? ORDER BY id ASC", (g*7+i)%5); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// A read racing a write may legitimately cache the pre-write rows it
	// saw (the insert lands after the write's invalidation — the same
	// window the single-mutex design had, since inserts happen after the
	// handler's reads). Flush to clear any such in-flight stragglers, then
	// verify the repopulated cache agrees with ground truth.
	c.flush()
	for grp := 0; grp < 5; grp++ {
		got, err := c.Query(ctx, "SELECT val FROM t WHERE grp = ? ORDER BY id ASC", grp)
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.Query(ctx, "SELECT val FROM t WHERE grp = ? ORDER BY id ASC", grp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Data, want.Data) {
			t.Fatalf("stale result for grp %d after quiescence:\n got %v\nwant %v", grp, got.Data, want.Data)
		}
	}
}

// TestStressBoundedCapacity asserts the entries <= maxEntries invariant
// under parallel cache-filling traffic with distinct value vectors.
func TestStressBoundedCapacity(t *testing.T) {
	_, c := newFixture(t, 16)
	ctx := context.Background()
	var overflow atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				arg := (g*37 + i) % 64
				if _, err := c.Query(ctx, "SELECT id, val FROM t WHERE val < ? ORDER BY id ASC", arg); err != nil {
					t.Error(err)
					return
				}
				if n := c.Stats().Entries; n > 16 {
					overflow.Store(int64(n))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := overflow.Load(); n > 0 {
		t.Fatalf("capacity bound violated: %d entries > 16", n)
	}
	st := c.Stats()
	if st.Entries > 16 {
		t.Fatalf("final entries %d > 16", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions; bound not exercised")
	}
	// The template index must stay consistent: invalidating everything via
	// an unanalysable-style flush leaves both tables empty.
	c.flush()
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries after flush: %+v", st)
	}
	for i := range c.tmplShards {
		ts := &c.tmplShards[i]
		ts.mu.Lock()
		if len(ts.groups) != 0 {
			t.Fatalf("template shard %d not cleaned: %d groups", i, len(ts.groups))
		}
		ts.mu.Unlock()
	}
}
