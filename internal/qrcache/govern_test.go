package qrcache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"autowebcache/internal/analysis"
	"autowebcache/internal/memdb"
)

// governFixture builds a db with one table of n rows per group and a
// governed result cache over it.
func governFixture(t *testing.T, opts Options, groups, rowsPerGroup int) (*memdb.DB, *Conn) {
	t.Helper()
	db := memdb.New()
	if err := db.CreateTable(memdb.TableSpec{
		Name: "t",
		Columns: []memdb.Column{
			{Name: "id", Type: memdb.TypeInt, AutoIncrement: true},
			{Name: "grp", Type: memdb.TypeInt},
			{Name: "val", Type: memdb.TypeString},
		},
		Indexed: []string{"grp"},
	}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for g := 0; g < groups; g++ {
		for i := 0; i < rowsPerGroup; i++ {
			if _, err := db.Exec(ctx, "INSERT INTO t (grp, val) VALUES (?, ?)", g, "payload-string"); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng, err := analysis.NewEngine(analysis.StrategyWhereMatch, db)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := NewWithOptions(db, eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, qr
}

const groupSQL = "SELECT id, val FROM t WHERE grp = ?"

func TestQrAdmissionRequiresMaxBytes(t *testing.T) {
	db := memdb.New()
	eng, err := analysis.NewEngine(analysis.StrategyWhereMatch, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithOptions(db, eng, Options{Admission: true}); err == nil {
		t.Fatal("Admission without MaxBytes must be rejected")
	}
}

func TestQrBytesAccounting(t *testing.T) {
	_, qr := governFixture(t, Options{}, 4, 10)
	ctx := context.Background()
	if _, err := qr.Query(ctx, groupSQL, 0); err != nil {
		t.Fatal(err)
	}
	st := qr.Stats()
	if st.Bytes <= 0 || st.Entries != 1 {
		t.Fatalf("stats after one cached query: %+v", st)
	}
	// A hit charges nothing further.
	if _, err := qr.Query(ctx, groupSQL, 0); err != nil {
		t.Fatal(err)
	}
	if got := qr.Bytes(); got != st.Bytes {
		t.Fatalf("hit changed accounted bytes %d -> %d", st.Bytes, got)
	}
	// Invalidation credits everything back.
	if _, err := qr.Exec(ctx, "UPDATE t SET val = ? WHERE grp = ?", "x", 0); err != nil {
		t.Fatal(err)
	}
	if got := qr.Bytes(); got != 0 {
		t.Fatalf("bytes after invalidation = %d, want 0", got)
	}
}

func TestQrZeroRowResultIsCached(t *testing.T) {
	_, qr := governFixture(t, Options{MaxBytes: 1 << 16}, 1, 5)
	ctx := context.Background()
	// grp=99 has no rows: an empty result set still caches (and costs its
	// key + overhead).
	rows, err := qr.Query(ctx, groupSQL, 99)
	if err != nil || rows.Len() != 0 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	if st := qr.Stats(); st.Entries != 1 || st.Bytes < entryOverhead {
		t.Fatalf("empty result not accounted: %+v", st)
	}
	if _, err := qr.Query(ctx, groupSQL, 99); err != nil {
		t.Fatal(err)
	}
	if st := qr.Stats(); st.Hits != 1 {
		t.Fatalf("empty result not served from cache: %+v", st)
	}
}

func TestQrOversizeResultServedNotCached(t *testing.T) {
	_, qr := governFixture(t, Options{MaxBytes: 128}, 1, 50)
	ctx := context.Background()
	rows, err := qr.Query(ctx, groupSQL, 0)
	if err != nil || rows.Len() != 50 {
		t.Fatalf("rows=%d err=%v", rows.Len(), err)
	}
	st := qr.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize result leaked into cache: %+v", st)
	}
	if st.OversizeRejects != 1 {
		t.Fatalf("OversizeRejects = %d, want 1", st.OversizeRejects)
	}
}

func TestQrAdmissionRejectsColdQuery(t *testing.T) {
	db, qr := governFixture(t, Options{MaxBytes: 4096, Admission: true}, 16, 20)
	ctx := context.Background()
	// Heat up group 0 so its frequency dominates.
	for i := 0; i < 16; i++ {
		if _, err := qr.Query(ctx, groupSQL, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Fill the budget with whatever fits.
	for g := 1; g < 16; g++ {
		if _, err := qr.Query(ctx, groupSQL, g); err != nil {
			t.Fatal(err)
		}
	}
	st := qr.Stats()
	if st.Bytes > 4096 {
		t.Fatalf("budget exceeded: %+v", st)
	}
	if st.AdmissionRejects == 0 {
		t.Fatalf("no admission rejects under pressure: %+v", st)
	}
	// The hot group must still be cached: a one-shot query cannot evict it.
	before := db.Stats().Queries
	if _, err := qr.Query(ctx, groupSQL, 0); err != nil {
		t.Fatal(err)
	}
	if after := db.Stats().Queries; after != before {
		t.Fatalf("hot result set was displaced (db queries %d -> %d)", before, after)
	}
}

func TestQrByteBudgetChurnStress(t *testing.T) {
	const budget = 32 << 10
	_, qr := governFixture(t, Options{MaxBytes: budget, Admission: true, Shards: 4}, 64, 8)
	ctx := context.Background()
	var over atomic.Int64
	stop := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if b := qr.Bytes(); b > budget {
				over.Store(b)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				grp := (g*13 + i) % 64
				if i%7 == 3 {
					if _, err := qr.Exec(ctx, "UPDATE t SET val = ? WHERE grp = ?",
						fmt.Sprintf("v%d", i), grp); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if _, err := qr.Query(ctx, groupSQL, grp); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	watcher.Wait()
	if b := over.Load(); b > 0 {
		t.Fatalf("accounted bytes %d exceeded budget %d during churn", b, budget)
	}
	if b := qr.Bytes(); b > budget || b < 0 {
		t.Fatalf("final bytes %d outside [0, %d]", b, budget)
	}
	// With no inserts in flight, the per-shard counters must sum to the
	// global figure: every reservation either linked or was credited back.
	var sum int64
	for _, b := range qr.ShardBytes() {
		sum += b
	}
	if sum != qr.Bytes() {
		t.Fatalf("books out of balance: shards sum %d, global %d", sum, qr.Bytes())
	}
	qr.Flush()
	if b := qr.Bytes(); b != 0 {
		t.Fatalf("bytes after flush = %d, want 0", b)
	}
}

func TestQrSegmentedEvictionProtectsReused(t *testing.T) {
	// Budget fits a handful of result sets; group 0 is hit repeatedly
	// (promoted), then a sweep of cold groups applies pressure.
	db, qr := governFixture(t, Options{MaxBytes: 3000}, 32, 4)
	ctx := context.Background()
	if _, err := qr.Query(ctx, groupSQL, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := qr.Query(ctx, groupSQL, 0); err != nil {
			t.Fatal(err)
		}
	}
	for g := 1; g < 32; g++ {
		if _, err := qr.Query(ctx, groupSQL, g); err != nil {
			t.Fatal(err)
		}
	}
	if qr.Stats().Evictions == 0 {
		t.Fatal("no eviction pressure generated")
	}
	before := db.Stats().Queries
	if _, err := qr.Query(ctx, groupSQL, 0); err != nil {
		t.Fatal(err)
	}
	if after := db.Stats().Queries; after != before {
		t.Fatal("promoted result set was evicted by one-hit churn")
	}
}
