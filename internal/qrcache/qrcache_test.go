package qrcache

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"autowebcache/internal/analysis"
	"autowebcache/internal/memdb"
)

func newFixture(t *testing.T, maxEntries int) (*memdb.DB, *Conn) {
	t.Helper()
	db := memdb.New()
	db.MustCreateTable(memdb.TableSpec{
		Name: "t",
		Columns: []memdb.Column{
			{Name: "id", Type: memdb.TypeInt, AutoIncrement: true},
			{Name: "grp", Type: memdb.TypeInt},
			{Name: "val", Type: memdb.TypeInt},
		},
		Indexed: []string{"grp"},
	})
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if _, err := db.Exec(ctx, "INSERT INTO t (grp, val) VALUES (?, ?)", i%5, i); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := analysis.NewEngine(analysis.StrategyExtraQuery, db)
	if err != nil {
		t.Fatal(err)
	}
	// Pin 8 stripes so the cross-shard paths are exercised even when the
	// test host has GOMAXPROCS=1.
	c, err := NewWithShards(db, engine, maxEntries, 8)
	if err != nil {
		t.Fatal(err)
	}
	return db, c
}

func TestValidation(t *testing.T) {
	db := memdb.New()
	engine, _ := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
	if _, err := New(nil, engine, 0); err == nil {
		t.Error("expected error for nil base")
	}
	if _, err := New(db, nil, 0); err == nil {
		t.Error("expected error for nil engine")
	}
	if _, err := New(db, engine, -1); err == nil {
		t.Error("expected error for negative capacity")
	}
	if _, err := NewWithShards(db, engine, 0, -1); err == nil {
		t.Error("expected error for negative shards")
	}
}

func TestHitServesCachedResult(t *testing.T) {
	db, c := newFixture(t, 0)
	ctx := context.Background()
	before := db.Stats()
	r1, err := c.Query(ctx, "SELECT val FROM t WHERE grp = ? ORDER BY id ASC", 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Query(ctx, "SELECT val FROM t WHERE grp = ? ORDER BY id ASC", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Data, r2.Data) {
		t.Fatal("cached result differs")
	}
	after := db.Stats()
	if after.Queries != before.Queries+1 {
		t.Fatalf("base executed %d queries, want 1", after.Queries-before.Queries)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestResultIsSharedSnapshot pins the zero-copy contract: the result set is
// snapshotted once at insert, and the miss and every subsequent hit hand out
// that same immutable snapshot by reference.
func TestResultIsSharedSnapshot(t *testing.T) {
	_, c := newFixture(t, 0)
	ctx := context.Background()
	r1, err := c.Query(ctx, "SELECT val FROM t WHERE grp = ?", 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Query(ctx, "SELECT val FROM t WHERE grp = ?", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("hit copied the result set instead of returning the stored snapshot")
	}
	// The snapshot must not alias the base database's storage: writing the
	// rows through the base must not change the held view (invalidation
	// removes the entry; the old view stays frozen).
	if _, err := c.Exec(ctx, "UPDATE t SET val = ? WHERE grp = ?", -999, 1); err != nil {
		t.Fatal(err)
	}
	if r1.Int(0, 0) == -999 {
		t.Fatal("cached snapshot aliases table storage")
	}
	r3, err := c.Query(ctx, "SELECT val FROM t WHERE grp = ?", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("invalidated snapshot was served again")
	}
	if r3.Int(0, 0) != -999 {
		t.Fatalf("post-invalidation read is stale: %v", r3.Data[0][0])
	}
}

func TestWriteInvalidatesIntersecting(t *testing.T) {
	_, c := newFixture(t, 0)
	ctx := context.Background()
	if _, err := c.Query(ctx, "SELECT val FROM t WHERE grp = ?", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "SELECT val FROM t WHERE grp = ?", 2); err != nil {
		t.Fatal(err)
	}
	// Update rows of grp 1 only.
	if _, err := c.Exec(ctx, "UPDATE t SET val = val + 100 WHERE grp = ?", 1); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// grp 2 still served from cache; grp 1 refetched fresh.
	r1, err := c.Query(ctx, "SELECT val FROM t WHERE grp = ? ORDER BY id ASC", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Int(0, 0) < 100 {
		t.Fatalf("stale result after write: %+v", r1.Data)
	}
}

func TestCapacityEviction(t *testing.T) {
	_, c := newFixture(t, 3)
	ctx := context.Background()
	for g := 0; g < 5; g++ {
		if _, err := c.Query(ctx, "SELECT val FROM t WHERE grp = ?", g); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries > 3 {
		t.Fatalf("capacity exceeded: %+v", st)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions: %+v", st)
	}
}

// TestConsistencyProperty: under random reads and writes, the caching
// connection must return exactly what the raw database returns.
func TestConsistencyProperty(t *testing.T) {
	db, c := newFixture(t, 0)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(43))
	reads := []string{
		"SELECT val FROM t WHERE grp = ? ORDER BY id ASC",
		"SELECT COUNT(*) FROM t WHERE grp = ?",
		"SELECT id, val FROM t WHERE val < ? ORDER BY id ASC",
	}
	for i := 0; i < 500; i++ {
		if rng.Intn(4) == 0 {
			switch rng.Intn(3) {
			case 0:
				if _, err := c.Exec(ctx, "UPDATE t SET val = ? WHERE grp = ?", rng.Intn(100), rng.Intn(5)); err != nil {
					t.Fatal(err)
				}
			case 1:
				if _, err := c.Exec(ctx, "INSERT INTO t (grp, val) VALUES (?, ?)", rng.Intn(5), rng.Intn(100)); err != nil {
					t.Fatal(err)
				}
			default:
				if _, err := c.Exec(ctx, "DELETE FROM t WHERE id = ?", 1+rng.Intn(40)); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		sql := reads[rng.Intn(len(reads))]
		arg := rng.Intn(60)
		got, err := c.Query(ctx, sql, arg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.Query(ctx, sql, arg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Data, want.Data) {
			t.Fatalf("iteration %d: stale result for %q(%d):\n got %v\nwant %v", i, sql, arg, got.Data, want.Data)
		}
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Fatal("no hits; property not exercised")
	}
}

func TestBadSQLPassesThrough(t *testing.T) {
	_, c := newFixture(t, 0)
	if _, err := c.Query(context.Background(), "NOT SQL"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := c.Exec(context.Background(), "NOT SQL"); err == nil {
		t.Fatal("expected error")
	}
}

func ExampleConn() {
	db := memdb.New()
	db.MustCreateTable(memdb.TableSpec{
		Name: "kv",
		Columns: []memdb.Column{
			{Name: "id", Type: memdb.TypeInt, AutoIncrement: true},
			{Name: "v", Type: memdb.TypeString},
		},
	})
	ctx := context.Background()
	engine, _ := analysis.NewEngine(analysis.StrategyExtraQuery, db)
	c, _ := New(db, engine, 0)
	_, _ = c.Exec(ctx, "INSERT INTO kv (v) VALUES ('a')")
	_, _ = c.Query(ctx, "SELECT v FROM kv WHERE id = ?", 1) // miss
	_, _ = c.Query(ctx, "SELECT v FROM kv WHERE id = ?", 1) // hit
	st := c.Stats()
	fmt.Println(st.Hits, st.Misses)
	// Output: 1 1
}

// TestCaptureDoesNotPolluteCache: the engine's own extra queries (pre-write
// captures) may read through the cache but must not be stored — their
// results are invalidated by the very write that triggered them.
func TestCaptureDoesNotPolluteCache(t *testing.T) {
	_, c := newFixture(t, 0)
	ctx := context.Background()
	before := c.Stats()
	// An UPDATE under AC-extraQuery triggers a capture SELECT.
	if _, err := c.Exec(ctx, "UPDATE t SET val = ? WHERE grp = ?", 1, 3); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Entries != before.Entries {
		t.Fatalf("capture query was stored: %+v -> %+v", before, after)
	}
}
