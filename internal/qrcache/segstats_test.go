package qrcache

import (
	"context"
	"testing"
)

// TestQrSegmentStats checks the per-segment occupancy split the telemetry
// layer exports from the result cache: a first query lands its result set
// in probation, a repeat query promotes it (bytes move to protected), and
// churning cold templates evicts from probation while the split counters
// stay consistent.
func TestQrSegmentStats(t *testing.T) {
	_, qr := governFixture(t, Options{MaxBytes: 64 << 10}, 32, 4)
	ctx := context.Background()

	if _, err := qr.Query(ctx, groupSQL, 0); err != nil {
		t.Fatal(err)
	}
	st := qr.Snapshot()
	if st.ProbationEntries != 1 || st.ProtectedEntries != 0 {
		t.Fatalf("after first query: probation=%d protected=%d", st.ProbationEntries, st.ProtectedEntries)
	}

	// The repeat query is a hit: the result set promotes to protected.
	if _, err := qr.Query(ctx, groupSQL, 0); err != nil {
		t.Fatal(err)
	}
	st = qr.Snapshot()
	if st.ProbationEntries != 0 || st.ProtectedEntries != 1 {
		t.Fatalf("after promote: probation=%d protected=%d", st.ProbationEntries, st.ProtectedEntries)
	}
	if st.ProtectedBytes <= 0 || st.ProbationBytes != 0 {
		t.Fatalf("after promote: probation bytes %d, protected bytes %d", st.ProbationBytes, st.ProtectedBytes)
	}
	if st.ProtectedBytes > st.Bytes {
		t.Fatalf("protected bytes %d exceed accounted total %d", st.ProtectedBytes, st.Bytes)
	}
}

// TestQrSegmentEvictionSplit drives a small governed result cache with
// one-hit queries until eviction and checks the probation/protected
// attribution adds up.
func TestQrSegmentEvictionSplit(t *testing.T) {
	_, qr := governFixture(t, Options{MaxBytes: 4 << 10, Shards: 1}, 64, 4)
	ctx := context.Background()

	// Establish one protected result set.
	for i := 0; i < 2; i++ {
		if _, err := qr.Query(ctx, groupSQL, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Churn cold groups.
	for g := 1; g < 64; g++ {
		if _, err := qr.Query(ctx, groupSQL, g); err != nil {
			t.Fatal(err)
		}
	}

	st := qr.Snapshot()
	if st.Evictions == 0 {
		t.Fatal("churn produced no evictions")
	}
	if st.EvictionsProbation+st.EvictionsProtected != st.Evictions {
		t.Fatalf("eviction split %d+%d != total %d",
			st.EvictionsProbation, st.EvictionsProtected, st.Evictions)
	}
	if st.EvictionsProbation == 0 {
		t.Fatal("one-hit churn must evict from probation")
	}
}
