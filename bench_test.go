package autowebcache_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"autowebcache"
	"autowebcache/internal/analysis"
	"autowebcache/internal/bench"
	"autowebcache/internal/cache"
	"autowebcache/internal/memdb"
	"autowebcache/internal/qrcache"
	"autowebcache/internal/sqlparser"
)

// Experiment benchmarks: one per paper table/figure, each regenerating the
// experiment at the Fast effort. Run `cmd/experiments` for the full-effort
// tables recorded in EXPERIMENTS.md.

func benchFigure(b *testing.B, fn func(bench.Params) (*bench.Table, error)) {
	b.Helper()
	p := bench.Fast()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig04AnalysisCache(b *testing.B)     { benchFigure(b, bench.Fig4) }
func BenchmarkFig13RubisResponseTime(b *testing.B) { benchFigure(b, bench.Fig13) }
func BenchmarkFig14TpcwResponseTime(b *testing.B)  { benchFigure(b, bench.Fig14) }
func BenchmarkFig15Semantics(b *testing.B)         { benchFigure(b, bench.Fig15) }
func BenchmarkFig16RubisPerRequest(b *testing.B)   { benchFigure(b, bench.Fig16) }
func BenchmarkFig17TpcwPerRequest(b *testing.B)    { benchFigure(b, bench.Fig17) }
func BenchmarkFig18RubisBreakdown(b *testing.B)    { benchFigure(b, bench.Fig18) }
func BenchmarkFig19TpcwBreakdown(b *testing.B)     { benchFigure(b, bench.Fig19) }

func BenchmarkFig20CodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig20("."); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStrategies(b *testing.B) { benchFigure(b, bench.AblationStrategies) }

func BenchmarkAblationReplacement(b *testing.B) { benchFigure(b, bench.AblationReplacement) }

func BenchmarkAblationComposition(b *testing.B) { benchFigure(b, bench.AblationComposition) }

// Micro-benchmarks of the hot paths underlying the figures.

func BenchmarkSQLParse(b *testing.B) {
	const q = "SELECT items.id, items.name FROM items JOIN users ON items.seller = users.id WHERE users.region = ? AND items.category = ? ORDER BY items.end_date ASC LIMIT 25"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemdbIndexedSelect(b *testing.B) {
	db := memdb.New()
	db.MustCreateTable(memdb.TableSpec{
		Name: "t",
		Columns: []memdb.Column{
			{Name: "id", Type: memdb.TypeInt, AutoIncrement: true},
			{Name: "grp", Type: memdb.TypeInt},
			{Name: "val", Type: memdb.TypeString},
		},
		Indexed: []string{"grp"},
	})
	ctx := context.Background()
	for i := 0; i < 10000; i++ {
		if _, err := db.Exec(ctx, "INSERT INTO t (grp, val) VALUES (?, ?)", i%100, "v"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(ctx, "SELECT id, val FROM t WHERE grp = ?", i%100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemdbScanSelect(b *testing.B) {
	db := memdb.New()
	db.MustCreateTable(memdb.TableSpec{
		Name: "t",
		Columns: []memdb.Column{
			{Name: "id", Type: memdb.TypeInt, AutoIncrement: true},
			{Name: "grp", Type: memdb.TypeInt},
		},
	})
	ctx := context.Background()
	for i := 0; i < 5000; i++ {
		if _, err := db.Exec(ctx, "INSERT INTO t (grp) VALUES (?)", i%100); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(ctx, "SELECT id FROM t WHERE grp = ?", i%100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheLookupHit(b *testing.B) {
	eng, err := analysis.NewEngine(analysis.StrategyExtraQuery, nil)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cache.New(cache.Options{Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, 4096)
	c.Insert("/page?x=1", body, "text/html", []analysis.Query{
		{SQL: "SELECT a FROM t WHERE b = ?", Args: []memdb.Value{int64(1)}},
	}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup("/page?x=1"); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkCacheInvalidateWrite(b *testing.B) {
	eng, err := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cache.New(cache.Options{Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		c.Insert(fmt.Sprintf("/page?x=%d", i), []byte("body"), "text/html", []analysis.Query{
			{SQL: "SELECT a FROM t WHERE b = ?", Args: []memdb.Value{int64(i)}},
		}, 0)
	}
	w := analysis.WriteCapture{Query: analysis.Query{
		SQL: "UPDATE t SET a = ? WHERE b = ?", Args: []memdb.Value{int64(1), int64(-1)},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.InvalidateWrite(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalysisIntersects(b *testing.B) {
	eng, err := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
	if err != nil {
		b.Fatal(err)
	}
	read := analysis.Query{SQL: "SELECT a FROM t WHERE b = ?", Args: []memdb.Value{int64(1)}}
	write := analysis.WriteCapture{Query: analysis.Query{
		SQL: "UPDATE t SET a = ? WHERE b = ?", Args: []memdb.Value{int64(9), int64(2)},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Intersects(read, write); err != nil {
			b.Fatal(err)
		}
	}
}

// newParallelCache builds a page cache pre-loaded with nKeys pages, each
// depending on one read-query instance, for the parallel benchmarks.
func newParallelCache(b *testing.B, nKeys int) (*cache.Cache, []string) {
	b.Helper()
	eng, err := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cache.New(cache.Options{Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, 1024)
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("/page?x=%d", i)
		c.Insert(keys[i], body, "text/html", []analysis.Query{
			{SQL: "SELECT a FROM t WHERE b = ?", Args: []memdb.Value{int64(i)}},
		}, 0)
	}
	return c, keys
}

// BenchmarkLookupParallel measures page-cache hit throughput under
// concurrent readers (run with -cpu 8 for the 8-goroutine figure). This is
// the hot path the sharded page table is designed to scale: before the
// lock-striping every Lookup serialised behind one cache-wide mutex.
func BenchmarkLookupParallel(b *testing.B) {
	c, keys := newParallelCache(b, 512)
	mask := len(keys) - 1
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := c.Lookup(keys[i&mask]); !ok {
				b.Fatal("unexpected miss")
			}
			i += 7 // co-prime stride: spread goroutines over distinct keys
		}
	})
}

// BenchmarkMixedParallel measures a read-dominated mix (lookups with
// periodic inserts and write invalidations) under concurrent clients — the
// shape of the paper's RUBiS bidding mix (85% reads).
func BenchmarkMixedParallel(b *testing.B) {
	c, keys := newParallelCache(b, 512)
	mask := len(keys) - 1
	body := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			k := (i * 7) & mask
			switch {
			case i%32 == 0:
				c.Insert(keys[k], body, "text/html", []analysis.Query{
					{SQL: "SELECT a FROM t WHERE b = ?", Args: []memdb.Value{int64(k)}},
				}, 0)
			case i%64 == 1:
				w := analysis.WriteCapture{Query: analysis.Query{
					SQL: "UPDATE t SET a = ? WHERE b = ?", Args: []memdb.Value{int64(1), int64(k)},
				}}
				if _, err := c.InvalidateWrite(w); err != nil {
					b.Fatal(err)
				}
			default:
				c.Lookup(keys[k])
			}
		}
	})
}

// BenchmarkWovenHitPath measures the full request path on a cache hit.
func BenchmarkWovenHitPath(b *testing.B) {
	db := autowebcache.NewDB()
	if err := db.CreateTable(autowebcache.TableSpec{
		Name: "notes",
		Columns: []autowebcache.Column{
			{Name: "id", Type: autowebcache.TypeInt, AutoIncrement: true},
			{Name: "note", Type: autowebcache.TypeString},
		},
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), "INSERT INTO notes (note) VALUES ('x')"); err != nil {
		b.Fatal(err)
	}
	rt, err := autowebcache.New(db, autowebcache.Config{})
	if err != nil {
		b.Fatal(err)
	}
	conn := rt.Conn()
	handlers := []autowebcache.HandlerInfo{{
		Name: "List", Path: "/list",
		Fn: func(w http.ResponseWriter, r *http.Request) {
			rows, err := conn.Query(r.Context(), "SELECT note FROM notes")
			if err != nil {
				http.Error(w, err.Error(), 500)
				return
			}
			_, _ = w.Write([]byte(rows.Str(0, 0)))
		},
	}}
	h, err := rt.Weave(handlers, autowebcache.Rules{})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/list", nil)
	h.ServeHTTP(httptest.NewRecorder(), req) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
	}
}

// BenchmarkQrcacheHit measures a warm query-result-cache hit of a 100-row
// result set. Since the zero-copy rework the hit returns the stored
// immutable snapshot by reference, so allocations no longer scale with the
// number of rows (previously one per row plus the column slice).
func BenchmarkQrcacheHit(b *testing.B) {
	db := memdb.New()
	db.MustCreateTable(memdb.TableSpec{
		Name: "t",
		Columns: []memdb.Column{
			{Name: "id", Type: memdb.TypeInt, AutoIncrement: true},
			{Name: "grp", Type: memdb.TypeInt},
			{Name: "val", Type: memdb.TypeString},
		},
		Indexed: []string{"grp"},
	})
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(ctx, "INSERT INTO t (grp, val) VALUES (?, ?)", 0, "payload"); err != nil {
			b.Fatal(err)
		}
	}
	eng, err := analysis.NewEngine(analysis.StrategyWhereMatch, db)
	if err != nil {
		b.Fatal(err)
	}
	qc, err := qrcache.New(db, eng, 0)
	if err != nil {
		b.Fatal(err)
	}
	const q = "SELECT id, val FROM t WHERE grp = ?"
	if _, err := qc.Query(ctx, q, 0); err != nil {
		b.Fatal(err) // prime
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := qc.Query(ctx, q, 0)
		if err != nil || rows.Len() != 100 {
			b.Fatalf("hit failed: %v", err)
		}
	}
}

// BenchmarkCoalescedMiss measures the thundering-herd path: every iteration
// flushes the cache and fires 8 concurrent requests at one cold key; the
// single-flight advice runs the handler once and the other 7 requests share
// the inserted body. Reported ns/op is per 8-request round.
func BenchmarkCoalescedMiss(b *testing.B) {
	db := autowebcache.NewDB()
	if err := db.CreateTable(autowebcache.TableSpec{
		Name: "notes",
		Columns: []autowebcache.Column{
			{Name: "id", Type: autowebcache.TypeInt, AutoIncrement: true},
			{Name: "note", Type: autowebcache.TypeString},
		},
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), "INSERT INTO notes (note) VALUES ('x')"); err != nil {
		b.Fatal(err)
	}
	rt, err := autowebcache.New(db, autowebcache.Config{})
	if err != nil {
		b.Fatal(err)
	}
	conn := rt.Conn()
	handlers := []autowebcache.HandlerInfo{{
		Name: "List", Path: "/list",
		Fn: func(w http.ResponseWriter, r *http.Request) {
			rows, err := conn.Query(r.Context(), "SELECT note FROM notes")
			if err != nil {
				http.Error(w, err.Error(), 500)
				return
			}
			_, _ = w.Write([]byte(rows.Str(0, 0)))
		},
	}}
	h, err := rt.Weave(handlers, autowebcache.Rules{})
	if err != nil {
		b.Fatal(err)
	}
	const herd = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Cache().Flush()
		var wg sync.WaitGroup
		for g := 0; g < herd; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodGet, "/list", nil)
				h.ServeHTTP(httptest.NewRecorder(), req)
			}()
		}
		wg.Wait()
	}
}
