// Command benchjson runs the hit-path micro-benchmarks (page-cache hit,
// miss+insert, query-result-cache hit, coalesced miss, mixed parallel) and
// writes the results — ns/op, allocs/op, B/op — as JSON, so each PR's perf
// trajectory is recorded machine-readably (the BENCH_N.json convention used
// by `make bench`).
package main

import (
	"flag"
	"fmt"
	"os"

	"autowebcache/internal/bench"
)

func main() {
	out := flag.String("out", "BENCH.json", "output JSON path")
	flag.Parse()
	recs, err := bench.WriteHitPathJSON(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, r := range recs {
		fmt.Printf("%-18s %10.0f ns/op %6d allocs/op %8d B/op  %s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Note)
	}
	fmt.Println("wrote", *out)
}
