// Command benchjson runs the hit-path micro-benchmarks (page-cache hit,
// miss+insert, query-result-cache hit, coalesced miss, mixed parallel) and
// writes the results — ns/op, allocs/op, B/op — as JSON, so each PR's perf
// trajectory is recorded machine-readably (the BENCH_N.json convention used
// by `make bench`; pass -out to pick the file).
//
// With -baseline it additionally diffs the fresh run against a committed
// BENCH_*.json and exits non-zero when any tracked benchmark regresses by
// more than -max-regress ns/op or allocates more per op — the CI
// bench-gate:
//
//	benchjson -out BENCH_CI.json -baseline BENCH_2.json
package main

import (
	"flag"
	"fmt"
	"os"

	"autowebcache/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("out", "BENCH.json", "output JSON path")
	baseline := fs.String("baseline", "", "baseline BENCH_*.json to gate against (empty = no gate)")
	maxRegress := fs.Float64("max-regress", bench.DefaultMaxRegress,
		"allowed fractional ns/op regression vs the baseline before the gate fails")
	if err := fs.Parse(args); err != nil {
		return err
	}
	recs, err := bench.WriteHitPathJSON(*outPath)
	if err != nil {
		return err
	}
	for _, r := range recs {
		fmt.Fprintf(out, "%-18s %10.0f ns/op %6d allocs/op %8d B/op  %s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Note)
	}
	fmt.Fprintln(out, "wrote", *outPath)
	if *baseline == "" {
		return nil
	}

	base, err := bench.ReadHitPathJSON(*baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	results, ok := bench.Gate(recs, base, *maxRegress)
	fmt.Fprintf(out, "\nbench-gate vs %s (max ns/op regression %.0f%%, allocs/op must not increase):\n",
		*baseline, *maxRegress*100)
	for _, r := range results {
		status := "ok  "
		if r.Missing {
			status = "info"
		} else if r.Failed {
			status = "FAIL"
		}
		fmt.Fprintf(out, "  %s %-18s %8.0f -> %8.0f ns/op (%.2fx) %3d -> %3d allocs/op  %s\n",
			status, r.Name, r.BaseNs, r.FreshNs, r.NsRatio, r.BaseAllocs, r.FreshAllocs, r.Reason)
	}
	if !ok {
		return fmt.Errorf("bench-gate failed against %s", *baseline)
	}
	fmt.Fprintln(out, "bench-gate passed")
	return nil
}
