// Command metricsdoc generates docs/METRICS.md from the live telemetry
// registry of a fully-wired throwaway stack, so the metrics reference can
// never drift from the code.
//
// Usage:
//
//	metricsdoc -out docs/METRICS.md          # (re)write the reference
//	metricsdoc -check docs/METRICS.md        # exit 1 if the file is stale
//
// `make docs-check` runs the -check mode in CI; the committed file is also
// verified by TestMetricsReferenceCurrent.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"autowebcache"
)

func main() {
	out := flag.String("out", "", "write the generated reference to this path")
	check := flag.String("check", "", "compare the generated reference against this path; exit 1 on drift")
	flag.Parse()
	if (*out == "") == (*check == "") {
		log.Fatal("metricsdoc: exactly one of -out or -check is required")
	}

	want, err := autowebcache.MetricsReference()
	if err != nil {
		log.Fatal("metricsdoc: ", err)
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(want), 0o644); err != nil {
			log.Fatal("metricsdoc: ", err)
		}
		fmt.Printf("metricsdoc: wrote %s (%d bytes)\n", *out, len(want))
		return
	}

	got, err := os.ReadFile(*check)
	if err != nil {
		log.Fatal("metricsdoc: ", err)
	}
	if string(got) != want {
		fmt.Fprintf(os.Stderr, "metricsdoc: %s is stale — regenerate with: go run ./cmd/metricsdoc -out %s\n", *check, *check)
		os.Exit(1)
	}
	fmt.Printf("metricsdoc: %s is current\n", *check)
}
