package main

import "testing"

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nosuch"}); err == nil {
		t.Fatal("expected flag error")
	}
}
