package main

import (
	"net/http"
	"testing"

	"autowebcache"
)

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nosuch"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-peers", "127.0.0.1:9999"}); err == nil {
		t.Fatal("expected error for -peers without -listen-peer")
	}
}

// TestClusterBootTPCW covers this binary's cluster wiring through the
// shared facade entry point.
func TestClusterBootTPCW(t *testing.T) {
	rt, err := autowebcache.New(autowebcache.NewDB(), autowebcache.Config{QueryCache: true})
	if err != nil {
		t.Fatal(err)
	}
	handler, err := rt.Weave([]autowebcache.HandlerInfo{{
		Name: "Home", Path: "/", Fn: func(w http.ResponseWriter, r *http.Request) {},
	}}, autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	if node, err := rt.Cluster(handler, autowebcache.ClusterConfig{}); err != nil || node != nil {
		t.Fatalf("disabled: node=%v err=%v", node, err)
	}
	node, err := rt.Cluster(handler, autowebcache.ClusterConfig{
		ListenPeer: "127.0.0.1:0", Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if node.Addr() == "" {
		t.Fatal("no resolved peer address")
	}
}
