// Command tpcw-server serves the TPC-W online-bookstore benchmark over
// HTTP, with or without AutoWebCache.
//
// Usage:
//
//	tpcw-server -addr :8081                  # cache-enabled
//	tpcw-server -nocache                     # baseline
//	tpcw-server -bestseller-window 30s       # the paper's Fig. 15 semantics
//
// Clustered (one logical cache across N processes):
//
//	tpcw-server -addr :8081 -listen-peer 127.0.0.1:9081 \
//	    -peers 127.0.0.1:9082,127.0.0.1:9083
//
// Observability (see docs/OPERATIONS.md and docs/METRICS.md):
//
//	tpcw-server ... -metrics-listen 127.0.0.1:9190
//	curl http://127.0.0.1:9190/metrics   # Prometheus text format
//
// Visit /home?c_id=1, /bestSellers?subject=ARTS, /productDetail?i_id=1, ...
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"autowebcache"
	"autowebcache/internal/cluster"
	"autowebcache/internal/tpcw"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("tpcw-server: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tpcw-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8081", "listen address")
	dbDSN := fs.String("db", "memdb", "database backend DSN: memdb, memdb:<name>, or sqlite:<path> (file shared across processes)")
	noCache := fs.Bool("nocache", false, "serve the uncached baseline")
	window := fs.Duration("bestseller-window", 0, "BestSellers semantic freshness window (paper: 30s)")
	maxBytes := fs.String("max-bytes", "", "page-cache memory budget (e.g. 64m, 1gib; empty = unbounded)")
	admission := fs.Bool("admission", false, "gate inserts with a TinyLFU admission filter under byte-budget pressure (requires -max-bytes)")
	fragments := fs.Bool("fragments", false, "fragment-granular (ESI-style) caching: assemble pages from per-fragment cache hits")
	listenPeer := fs.String("listen-peer", "", "cluster peer-protocol listen address (enables the peer tier)")
	peers := fs.String("peers", "", "comma-separated peer addresses of the other cluster nodes")
	invMode := fs.String("invalidation", "strong", "cluster invalidation mode: strong or async")
	replication := fs.Int("replication", 1, "cluster ring replication factor (owner nodes per key)")
	strictBcast := fs.Bool("strict-broadcast", false, "report strong-mode writes that missed a down peer as write-degraded")
	probeInterval := fs.Duration("probe-interval", 0, "cluster peer health-probe cadence (0 = 250ms, negative disables)")
	failThreshold := fs.Int("failure-threshold", 0, "consecutive peer-call failures before the circuit breaker opens (0 = 3)")
	metricsListen := fs.String("metrics-listen", "", "admin listen address serving /metrics (Prometheus), /statsz, /healthz and /debug/pprof (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	budget, err := autowebcache.ParseByteSize(*maxBytes)
	if err != nil {
		return err
	}

	rt, err := autowebcache.Open(*dbDSN, autowebcache.Config{
		Disabled:  *noCache,
		MaxBytes:  budget,
		Admission: *admission,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	scale := tpcw.DefaultScale()
	lastDate, err := tpcw.Seed(context.Background(), rt.RawConn(), scale)
	if err != nil {
		return err
	}
	app := tpcw.New(rt.Conn(), scale, lastDate)
	rules := tpcw.WeaveRules(*window)
	rules.Fragments = *fragments
	handler, err := rt.Weave(app.Handlers(), rules)
	if err != nil {
		return err
	}
	node, err := rt.Cluster(handler, autowebcache.ClusterConfig{
		ListenPeer:       *listenPeer,
		Peers:            cluster.ParsePeerList(*peers),
		Invalidation:     *invMode,
		Replication:      *replication,
		StrictBroadcast:  *strictBcast,
		ProbeInterval:    *probeInterval,
		FailureThreshold: *failThreshold,
	})
	if err != nil {
		return err
	}
	if node != nil {
		defer node.Close()
		log.Printf("cluster peer tier on %s (%d-node ring, invalidation=%s)",
			node.Addr(), node.Ring().Len(), *invMode)
	}

	if *metricsListen != "" {
		admin := autowebcache.NewAdmin().Watch(rt, handler, node)
		adminSrv := &http.Server{Addr: *metricsListen, Handler: admin.Handler(), ReadHeaderTimeout: 5 * time.Second}
		defer adminSrv.Close()
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("admin listener: %v", err)
			}
		}()
		log.Printf("admin surface on %s (/metrics, /statsz, /healthz, /debug/pprof)", *metricsListen)
	}

	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("TPC-W serving on %s (cache=%v, window=%v)", *addr, !*noCache, *window)

	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
	}
	if c := rt.Cache(); c != nil {
		log.Printf("cache stats at exit: %+v", c.Stats())
	}
	if node != nil {
		log.Printf("cluster stats at exit: %+v", node.Stats())
	}
	return nil
}
