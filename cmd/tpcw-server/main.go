// Command tpcw-server serves the TPC-W online-bookstore benchmark over
// HTTP, with or without AutoWebCache.
//
// Usage:
//
//	tpcw-server -addr :8081                  # cache-enabled
//	tpcw-server -nocache                     # baseline
//	tpcw-server -bestseller-window 30s       # the paper's Fig. 15 semantics
//	tpcw-server -encodings gzip -etag        # gzip variants + 304 revalidation
//
// Clustered (one logical cache across N processes):
//
//	tpcw-server -addr :8081 -listen-peer 127.0.0.1:9081 \
//	    -peers 127.0.0.1:9082,127.0.0.1:9083
//
// Observability (see docs/OPERATIONS.md and docs/METRICS.md):
//
//	tpcw-server ... -metrics-listen 127.0.0.1:9190
//	curl http://127.0.0.1:9190/metrics   # Prometheus text format
//
// Visit /home?c_id=1, /bestSellers?subject=ARTS, /productDetail?i_id=1, ...
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"autowebcache"
	"autowebcache/internal/serverutil"
	"autowebcache/internal/tpcw"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("tpcw-server: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tpcw-server", flag.ContinueOnError)
	flags := serverutil.Register(fs, ":8081")
	window := fs.Duration("bestseller-window", 0, "BestSellers semantic freshness window (paper: 30s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := flags.Config()
	if err != nil {
		return err
	}

	rt, err := autowebcache.Open(*flags.DB, cfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	scale := tpcw.DefaultScale()
	lastDate, err := tpcw.Seed(context.Background(), rt.RawConn(), scale)
	if err != nil {
		return err
	}
	app := tpcw.New(rt.Conn(), scale, lastDate)
	rules := tpcw.WeaveRules(*window)
	rules.Fragments = *flags.Fragments
	handler, err := rt.Weave(app.Handlers(), rules)
	if err != nil {
		return err
	}
	return flags.Serve(rt, handler, fmt.Sprintf(
		"TPC-W serving on %s (cache=%v, window=%v)",
		*flags.Addr, !*flags.NoCache, *window))
}
