// Command codesize reproduces the paper's Figure 20: lines of code per
// architectural role, demonstrating that the weaving glue is a small
// fraction of the caching library and the applications.
//
// Usage:
//
//	codesize            # scan the current directory
//	codesize -dir PATH  # scan another checkout
package main

import (
	"flag"
	"fmt"
	"os"

	"autowebcache/internal/bench"
)

func main() {
	dir := flag.String("dir", ".", "repository root to scan")
	flag.Parse()
	tbl, err := bench.Fig20(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codesize:", err)
		os.Exit(1)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "codesize:", err)
		os.Exit(1)
	}
}
