// Command experiments regenerates the paper's tables and figures as text
// tables.
//
// Usage:
//
//	experiments                # run everything at full effort
//	experiments -fig 13        # run one experiment (4, 13..20, A, B)
//	experiments -fast          # small parameters (quick smoke run)
//	experiments -root DIR      # repository root for the fig. 20 LoC scan
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autowebcache/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.String("fig", "all", "experiment to run: 4, 13, 14, 15, 16, 17, 18, 19, 20, A, B, C, P, H, CL, F or all")
	fast := fs.Bool("fast", false, "use small parameters for a quick run")
	root := fs.String("root", ".", "repository root (for the fig. 20 code-size scan)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := bench.Full()
	if *fast {
		p = bench.Fast()
	}
	type runner func() (*bench.Table, error)
	runners := map[string]runner{
		"4":  func() (*bench.Table, error) { return bench.Fig4(p) },
		"13": func() (*bench.Table, error) { return bench.Fig13(p) },
		"14": func() (*bench.Table, error) { return bench.Fig14(p) },
		"15": func() (*bench.Table, error) { return bench.Fig15(p) },
		"16": func() (*bench.Table, error) { return bench.Fig16(p) },
		"17": func() (*bench.Table, error) { return bench.Fig17(p) },
		"18": func() (*bench.Table, error) { return bench.Fig18(p) },
		"19": func() (*bench.Table, error) { return bench.Fig19(p) },
		"20": func() (*bench.Table, error) { return bench.Fig20(*root) },
		"A":  func() (*bench.Table, error) { return bench.AblationStrategies(p) },
		"B":  func() (*bench.Table, error) { return bench.AblationReplacement(p) },
		"C":  func() (*bench.Table, error) { return bench.AblationComposition(p) },
		"P":  func() (*bench.Table, error) { return bench.ParallelScalability(p) },
		"H":  func() (*bench.Table, error) { return bench.HitPath(p) },
		"CL": func() (*bench.Table, error) { return bench.ClusterScalability(p) },
		"F":  func() (*bench.Table, error) { return bench.FragmentBenefit(p) },
	}
	if strings.EqualFold(*fig, "all") {
		// Render incrementally: full-effort experiments take minutes each.
		for _, id := range []string{"4", "13", "14", "15", "16", "17", "18", "19", "20", "A", "B", "C", "P", "H", "CL", "F"} {
			tbl, err := runners[id]()
			if err != nil {
				return fmt.Errorf("experiment %s: %w", id, err)
			}
			if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
		}
		return nil
	}
	r, ok := runners[strings.ToUpper(strings.TrimPrefix(*fig, "fig"))]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *fig)
	}
	tbl, err := r()
	if err != nil {
		return err
	}
	return tbl.Render(os.Stdout)
}
