package main

import "testing"

func TestRunFig20(t *testing.T) {
	// Fig. 20 needs no workload; point it at the repository root.
	if err := run([]string{"-fig", "20", "-root", "../.."}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFig(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nosuch"}); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestRunFigPrefixAccepted(t *testing.T) {
	if err := run([]string{"-fig", "fig20", "-root", "../.."}); err != nil {
		t.Fatal(err)
	}
}
