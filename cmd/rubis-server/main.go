// Command rubis-server serves the RUBiS auction-site benchmark over HTTP,
// with or without AutoWebCache in front of it.
//
// Usage:
//
//	rubis-server -addr :8080                 # cache-enabled (AC-extraQuery)
//	rubis-server -nocache                    # baseline
//	rubis-server -strategy columnonly        # pick an invalidation strategy
//	rubis-server -encodings gzip -etag       # gzip variants + 304 revalidation
//
// Clustered (one logical cache across N processes):
//
//	rubis-server -addr :8080 -listen-peer 127.0.0.1:9080 \
//	    -peers 127.0.0.1:9081,127.0.0.1:9082
//	rubis-server ... -invalidation async     # best-effort, time-lagged peers
//
// Observability (see docs/OPERATIONS.md and docs/METRICS.md):
//
//	rubis-server ... -metrics-listen 127.0.0.1:9190
//	curl http://127.0.0.1:9190/metrics   # Prometheus text format
//
// Visit / for the home page; /browseCategories, /viewItem?itemId=1, etc.
// Responses carry an X-Autowebcache header (hit/miss/remote-hit/write/...).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"autowebcache"
	"autowebcache/internal/rubis"
	"autowebcache/internal/serverutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("rubis-server: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rubis-server", flag.ContinueOnError)
	flags := serverutil.Register(fs, ":8080")
	strategy := fs.String("strategy", "extraquery", "invalidation strategy: columnonly, wherematch, extraquery")
	if err := fs.Parse(args); err != nil {
		return err
	}
	strat, err := serverutil.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	cfg, err := flags.Config()
	if err != nil {
		return err
	}
	cfg.Strategy = strat

	rt, err := autowebcache.Open(*flags.DB, cfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	scale := rubis.DefaultScale()
	lastDate, err := rubis.Seed(context.Background(), rt.RawConn(), scale)
	if err != nil {
		return err
	}
	app := rubis.New(rt.Conn(), scale, lastDate)
	handler, err := rt.Weave(app.Handlers(), autowebcache.Rules{Fragments: *flags.Fragments})
	if err != nil {
		return err
	}
	return flags.Serve(rt, handler, fmt.Sprintf(
		"RUBiS serving on %s (cache=%v, strategy=%v, fragments=%v)",
		*flags.Addr, !*flags.NoCache, strat, *flags.Fragments))
}
