// Command rubis-server serves the RUBiS auction-site benchmark over HTTP,
// with or without AutoWebCache in front of it.
//
// Usage:
//
//	rubis-server -addr :8080                 # cache-enabled (AC-extraQuery)
//	rubis-server -nocache                    # baseline
//	rubis-server -strategy columnonly        # pick an invalidation strategy
//
// Clustered (one logical cache across N processes):
//
//	rubis-server -addr :8080 -listen-peer 127.0.0.1:9080 \
//	    -peers 127.0.0.1:9081,127.0.0.1:9082
//	rubis-server ... -invalidation async     # best-effort, time-lagged peers
//
// Observability (see docs/OPERATIONS.md and docs/METRICS.md):
//
//	rubis-server ... -metrics-listen 127.0.0.1:9190
//	curl http://127.0.0.1:9190/metrics   # Prometheus text format
//
// Visit / for the home page; /browseCategories, /viewItem?itemId=1, etc.
// Responses carry an X-Autowebcache header (hit/miss/remote-hit/write/...).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"autowebcache"
	"autowebcache/internal/cluster"
	"autowebcache/internal/rubis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("rubis-server: ", err)
	}
}

func parseStrategy(s string) (autowebcache.Strategy, error) {
	switch strings.ToLower(s) {
	case "columnonly":
		return autowebcache.ColumnOnly, nil
	case "wherematch":
		return autowebcache.WhereMatch, nil
	case "extraquery", "ac-extraquery":
		return autowebcache.ExtraQuery, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func run(args []string) error {
	fs := flag.NewFlagSet("rubis-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dbDSN := fs.String("db", "memdb", "database backend DSN: memdb, memdb:<name>, or sqlite:<path> (file shared across processes)")
	noCache := fs.Bool("nocache", false, "serve the uncached baseline")
	strategy := fs.String("strategy", "extraquery", "invalidation strategy: columnonly, wherematch, extraquery")
	maxBytes := fs.String("max-bytes", "", "page-cache memory budget (e.g. 64m, 1gib; empty = unbounded)")
	admission := fs.Bool("admission", false, "gate inserts with a TinyLFU admission filter under byte-budget pressure (requires -max-bytes)")
	fragments := fs.Bool("fragments", false, "fragment-granular (ESI-style) caching: assemble pages from per-fragment cache hits")
	listenPeer := fs.String("listen-peer", "", "cluster peer-protocol listen address (enables the peer tier)")
	peers := fs.String("peers", "", "comma-separated peer addresses of the other cluster nodes")
	invMode := fs.String("invalidation", "strong", "cluster invalidation mode: strong or async")
	replication := fs.Int("replication", 1, "cluster ring replication factor (owner nodes per key)")
	strictBcast := fs.Bool("strict-broadcast", false, "report strong-mode writes that missed a down peer as write-degraded")
	probeInterval := fs.Duration("probe-interval", 0, "cluster peer health-probe cadence (0 = 250ms, negative disables)")
	failThreshold := fs.Int("failure-threshold", 0, "consecutive peer-call failures before the circuit breaker opens (0 = 3)")
	metricsListen := fs.String("metrics-listen", "", "admin listen address serving /metrics (Prometheus), /statsz, /healthz and /debug/pprof (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	budget, err := autowebcache.ParseByteSize(*maxBytes)
	if err != nil {
		return err
	}

	rt, err := autowebcache.Open(*dbDSN, autowebcache.Config{
		Strategy:  strat,
		Disabled:  *noCache,
		MaxBytes:  budget,
		Admission: *admission,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	scale := rubis.DefaultScale()
	lastDate, err := rubis.Seed(context.Background(), rt.RawConn(), scale)
	if err != nil {
		return err
	}
	app := rubis.New(rt.Conn(), scale, lastDate)
	handler, err := rt.Weave(app.Handlers(), autowebcache.Rules{Fragments: *fragments})
	if err != nil {
		return err
	}
	node, err := rt.Cluster(handler, autowebcache.ClusterConfig{
		ListenPeer:       *listenPeer,
		Peers:            cluster.ParsePeerList(*peers),
		Invalidation:     *invMode,
		Replication:      *replication,
		StrictBroadcast:  *strictBcast,
		ProbeInterval:    *probeInterval,
		FailureThreshold: *failThreshold,
	})
	if err != nil {
		return err
	}
	if node != nil {
		defer node.Close()
		log.Printf("cluster peer tier on %s (%d-node ring, invalidation=%s)",
			node.Addr(), node.Ring().Len(), *invMode)
	}

	if *metricsListen != "" {
		admin := autowebcache.NewAdmin().Watch(rt, handler, node)
		adminSrv := &http.Server{Addr: *metricsListen, Handler: admin.Handler(), ReadHeaderTimeout: 5 * time.Second}
		defer adminSrv.Close()
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("admin listener: %v", err)
			}
		}()
		log.Printf("admin surface on %s (/metrics, /statsz, /healthz, /debug/pprof)", *metricsListen)
	}

	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("RUBiS serving on %s (cache=%v, strategy=%v, fragments=%v)", *addr, !*noCache, strat, *fragments)

	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
	}
	if c := rt.Cache(); c != nil {
		log.Printf("cache stats at exit: %+v", c.Stats())
	}
	if node != nil {
		log.Printf("cluster stats at exit: %+v", node.Stats())
	}
	return nil
}
