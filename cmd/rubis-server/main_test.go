package main

import (
	"net/http"
	"testing"

	"autowebcache"
	"autowebcache/internal/serverutil"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]bool{
		"columnonly": true, "WhereMatch": true, "extraquery": true,
		"AC-extraQuery": true, "bogus": false, "": false,
	}
	for in, ok := range cases {
		_, err := serverutil.ParseStrategy(in)
		if ok && err != nil {
			t.Errorf("%q: %v", in, err)
		}
		if !ok && err == nil {
			t.Errorf("%q: expected error", in)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nosuch"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-strategy", "bogus"}); err == nil {
		t.Fatal("expected strategy error")
	}
}

// TestClusterBoot covers the cluster flag plumbing through the facade:
// disabled, misused and properly booted (strong and async modes).
func TestClusterBoot(t *testing.T) {
	db := autowebcache.NewDB()
	rt, err := autowebcache.New(db, autowebcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	handler, err := rt.Weave([]autowebcache.HandlerInfo{{
		Name: "Home", Path: "/", Fn: func(w http.ResponseWriter, r *http.Request) {},
	}}, autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}

	// Disabled: no -listen-peer, no node.
	if node, err := rt.Cluster(handler, autowebcache.ClusterConfig{}); err != nil || node != nil {
		t.Fatalf("disabled: node=%v err=%v", node, err)
	}
	// -peers without -listen-peer is a configuration error.
	if _, err := rt.Cluster(handler, autowebcache.ClusterConfig{
		Peers: []string{"127.0.0.1:9999"}}); err == nil {
		t.Fatal("expected error for -peers without -listen-peer")
	}
	// Unknown invalidation mode.
	if _, err := rt.Cluster(handler, autowebcache.ClusterConfig{
		ListenPeer: "127.0.0.1:0", Invalidation: "bogus"}); err == nil {
		t.Fatal("expected error for bad invalidation mode")
	}
	// A clustered baseline is contradictory.
	baseline, err := autowebcache.New(autowebcache.NewDB(), autowebcache.Config{Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.Cluster(handler, autowebcache.ClusterConfig{
		ListenPeer: "127.0.0.1:0"}); err == nil {
		t.Fatal("expected error for clustering with -nocache")
	}
	// Properly booted, local mode (no peers yet).
	node, err := rt.Cluster(handler, autowebcache.ClusterConfig{
		ListenPeer: "127.0.0.1:0", Invalidation: "async"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if node.Addr() == "" || node.Ring().Len() != 1 {
		t.Fatalf("node addr=%q ring=%d", node.Addr(), node.Ring().Len())
	}
}
