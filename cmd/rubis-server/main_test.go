package main

import "testing"

func TestParseStrategy(t *testing.T) {
	cases := map[string]bool{
		"columnonly": true, "WhereMatch": true, "extraquery": true,
		"AC-extraQuery": true, "bogus": false, "": false,
	}
	for in, ok := range cases {
		_, err := parseStrategy(in)
		if ok && err != nil {
			t.Errorf("%q: %v", in, err)
		}
		if !ok && err == nil {
			t.Errorf("%q: expected error", in)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nosuch"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-strategy", "bogus"}); err == nil {
		t.Fatal("expected strategy error")
	}
}
