package main

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"autowebcache"
	"autowebcache/internal/rubis"
)

func TestOpenLoopScheduleCoversEveryIndexOnce(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int]int)
	res := runOpenLoop(3, 100*time.Millisecond, 500, 1,
		func(client, reqNum int, rng *rand.Rand, intended time.Time) bool {
			mu.Lock()
			seen[reqNum]++
			mu.Unlock()
			return true
		})
	if res.scheduled != 50 {
		t.Fatalf("scheduled = %d, want 500 req/s * 0.1s = 50", res.scheduled)
	}
	if len(seen) != 50 {
		t.Fatalf("issued %d distinct indices, want 50", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d issued %d times", i, n)
		}
	}
	if len(res.latencies) != 50 || res.failures != 0 {
		t.Fatalf("latencies=%d failures=%d", len(res.latencies), res.failures)
	}
}

func TestOpenLoopLatencyFromIntendedSendTime(t *testing.T) {
	// A worker that stalls 20ms per request at a schedule demanding one
	// request per ms must accumulate queueing delay: later requests start
	// well past their intended departure, so their recorded latency exceeds
	// the 20ms service time. A closed-loop (coordinated-omission) measure
	// would report ~20ms for every request.
	res := runOpenLoop(1, 40*time.Millisecond, 1000, 1,
		func(client, reqNum int, rng *rand.Rand, intended time.Time) bool {
			time.Sleep(20 * time.Millisecond)
			return true
		})
	if res.failures != 0 || len(res.latencies) == 0 {
		t.Fatalf("failures=%d latencies=%d", res.failures, len(res.latencies))
	}
	if max := res.latencies[len(res.latencies)-1]; max < 40*time.Millisecond {
		t.Fatalf("max latency %v; queueing delay not measured from intended send time", max)
	}
}

func TestOpenLoopFailuresExcludedFromLatencies(t *testing.T) {
	res := runOpenLoop(2, 20*time.Millisecond, 500, 1,
		func(client, reqNum int, rng *rand.Rand, intended time.Time) bool {
			return reqNum%2 == 0
		})
	if res.failures == 0 {
		t.Fatal("no failures counted")
	}
	if len(res.latencies)+res.failures != res.scheduled {
		t.Fatalf("latencies %d + failures %d != scheduled %d",
			len(res.latencies), res.failures, res.scheduled)
	}
}

func TestPercentile(t *testing.T) {
	sample := make([]time.Duration, 100)
	for i := range sample {
		sample[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{0.50, 50 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1, 100 * time.Millisecond},
	} {
		if got := percentile(sample, tc.q); got != tc.want {
			t.Errorf("p%v = %v, want %v", tc.q*100, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty sample: %v", got)
	}
}

func TestOpenLoopAgainstLiveServer(t *testing.T) {
	db := autowebcache.NewDB()
	scale := rubis.Scale{Regions: 2, Categories: 3, Users: 10, Items: 20,
		BidsPerItem: 2, CommentsPerUser: 1, BuyNows: 5, Seed: 1}
	last, err := rubis.Load(db, scale)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := autowebcache.New(db, autowebcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	app := rubis.New(rt.Conn(), scale, last)
	h, err := rt.Weave(app.Handlers(), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	var out strings.Builder
	err = run([]string{
		"-target", srv.URL, "-app", "rubis", "-clients", "4",
		"-openloop", "-rate", "400", "-duration", "250ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"open-loop:", "offered 400.0 req/s", "p50", "p99", "p999", "hit rate"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	if err := run([]string{"-openloop", "-rate", "0"}, &out); err == nil {
		t.Fatal("zero -rate accepted")
	}
}

func TestOpenLoopRejectsNonFiniteRates(t *testing.T) {
	// flag.Float64 happily parses "NaN" and "+Inf"; NaN in particular slips
	// past a plain `rate <= 0` check because NaN fails every comparison.
	for _, bad := range []string{"NaN", "+Inf", "-Inf", "-1"} {
		var out strings.Builder
		if err := run([]string{"-openloop", "-rate", bad}, &out); err == nil {
			t.Fatalf("-rate %s accepted", bad)
		}
	}
}

func TestOpenLoopAllSendsFailPrintsWithoutPanic(t *testing.T) {
	res := runOpenLoop(2, 20*time.Millisecond, 500, 1,
		func(client, reqNum int, rng *rand.Rand, intended time.Time) bool {
			return false
		})
	if res.failures != res.scheduled || len(res.latencies) != 0 {
		t.Fatalf("failures=%d scheduled=%d latencies=%d",
			res.failures, res.scheduled, len(res.latencies))
	}
	var out strings.Builder
	res.print(&out) // must not index into the empty latency sample
	if !strings.Contains(out.String(), "send failures") {
		t.Fatalf("failure count missing from report:\n%s", out.String())
	}
	if strings.Contains(out.String(), "p50") {
		t.Fatalf("percentile line printed with no successful sends:\n%s", out.String())
	}
}
