// Open-loop load generation: requests depart on a fixed arrival schedule
// computed before the run, independent of how fast the server answers.
// Latency is measured from each request's *intended* departure time, so a
// stalled server shows up as growing queueing delay in the tail percentiles
// instead of silently throttling the load — the closed-loop artefact known
// as coordinated omission.
package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// validRate reports whether r is usable as an open-loop arrival rate:
// positive and finite. NaN fails every comparison, so a bare `r <= 0`
// rejection lets it through into the interval arithmetic (a NaN interval
// makes every departure time NaN-driven garbage); +Inf schedules a zero
// interval with an overflowing request count.
func validRate(r float64) bool {
	return !math.IsNaN(r) && !math.IsInf(r, 0) && r > 0
}

// openLoopResult is one open-loop run's latency sample and throughput.
type openLoopResult struct {
	offered   float64         // scheduled arrival rate (req/s)
	achieved  float64         // completed requests over the wall-clock run
	scheduled int             // requests in the arrival schedule
	failures  int             // fetches that errored (excluded from latencies)
	latencies []time.Duration // sorted, successful requests only
}

// runOpenLoop issues `rate` requests/sec for `duration` across `workers`
// goroutines. The schedule interleaves: worker w owns global request
// indices w, w+W, w+2W, ..., each departing at start + index*interval, so
// the aggregate arrival process is uniform even when one worker blocks on a
// slow response.
func runOpenLoop(workers int, duration time.Duration, rate float64, seed int64,
	attempt func(client, reqNum int, rng *rand.Rand, intended time.Time) bool) openLoopResult {

	interval := time.Duration(float64(time.Second) / rate)
	total := int(rate * duration.Seconds())
	if total < 1 {
		total = 1
	}
	perWorker := make([][]time.Duration, workers)
	failed := make([]int, workers)
	start := time.Now().Add(5 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			for i := w; i < total; i += workers {
				intended := start.Add(time.Duration(i) * interval)
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				if attempt(w, i, rng, intended) {
					perWorker[w] = append(perWorker[w], time.Since(intended))
				} else {
					failed[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := openLoopResult{offered: rate, scheduled: total}
	for w := range perWorker {
		res.latencies = append(res.latencies, perWorker[w]...)
		res.failures += failed[w]
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	if elapsed > 0 {
		res.achieved = float64(len(res.latencies)) / elapsed.Seconds()
	}
	return res
}

// percentile reads the q-quantile (0 <= q <= 1) from a sorted sample by
// nearest-rank on the scaled index.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func (r openLoopResult) print(out io.Writer) {
	fmt.Fprintf(out, "\nopen-loop: offered %.1f req/s (%d scheduled), achieved %.1f req/s, %d send failures\n",
		r.offered, r.scheduled, r.achieved, r.failures)
	if len(r.latencies) == 0 {
		return
	}
	fmt.Fprintf(out, "latency from intended send: p50 %v  p95 %v  p99 %v  p999 %v  max %v\n",
		percentile(r.latencies, 0.50).Round(time.Microsecond),
		percentile(r.latencies, 0.95).Round(time.Microsecond),
		percentile(r.latencies, 0.99).Round(time.Microsecond),
		percentile(r.latencies, 0.999).Round(time.Microsecond),
		r.latencies[len(r.latencies)-1].Round(time.Microsecond))
}
