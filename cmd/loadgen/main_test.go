package main

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"autowebcache"
	"autowebcache/internal/rubis"
)

func TestBuildMix(t *testing.T) {
	good := [][2]string{{"rubis", "bidding"}, {"rubis", "browsing"}, {"rubis", "personalized"},
		{"tpcw", "shopping"}, {"tpcw", "browsing"}}
	for _, g := range good {
		if _, err := buildMix(g[0], g[1]); err != nil {
			t.Errorf("%v: %v", g, err)
		}
	}
	bad := [][2]string{{"rubis", "shopping"}, {"tpcw", "bidding"}, {"nope", "x"}}
	for _, b := range bad {
		if _, err := buildMix(b[0], b[1]); err == nil {
			t.Errorf("%v: expected error", b)
		}
	}
}

func TestRunAgainstLiveServer(t *testing.T) {
	db := autowebcache.NewDB()
	scale := rubis.Scale{Regions: 2, Categories: 3, Users: 10, Items: 20,
		BidsPerItem: 2, CommentsPerUser: 1, BuyNows: 5, Seed: 1}
	last, err := rubis.Load(db, scale)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := autowebcache.New(db, autowebcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	app := rubis.New(rt.Conn(), scale, last)
	h, err := rt.Weave(app.Handlers(), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	var out strings.Builder
	err = run([]string{
		"-target", srv.URL, "-app", "rubis", "-clients", "4",
		"-duration", "300ms", "-think", "1ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "total ") || !strings.Contains(report, "hit rate") {
		t.Fatalf("report: %q", report)
	}
	if strings.Contains(report, "errs") && strings.Contains(report, " 0 requests") {
		t.Fatalf("no requests issued: %q", report)
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nosuch"}, &out); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-app", "nope"}, &out); err == nil {
		t.Fatal("expected app error")
	}
	if err := run([]string{"-clients", "0"}, &out); err == nil {
		t.Fatal("expected error for zero clients")
	}
	if err := run([]string{"-clients", "0", "-concurrency", "-1"}, &out); err == nil {
		t.Fatal("expected error for non-positive concurrency")
	}
}

// TestConcurrencyFlag drives a live server with -concurrency, the parallel
// client-goroutine knob that exercises the sharded page cache.
func TestConcurrencyFlag(t *testing.T) {
	db := autowebcache.NewDB()
	scale := rubis.Scale{Regions: 2, Categories: 3, Users: 10, Items: 20,
		BidsPerItem: 2, CommentsPerUser: 1, BuyNows: 5, Seed: 1}
	last, err := rubis.Load(db, scale)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := autowebcache.New(db, autowebcache.Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	app := rubis.New(rt.Conn(), scale, last)
	h, err := rt.Weave(app.Handlers(), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	var out strings.Builder
	err = run([]string{
		"-target", srv.URL, "-app", "rubis", "-clients", "1",
		"-concurrency", "8", "-duration", "300ms", "-think", "0s",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "total ") {
		t.Fatalf("report: %q", out.String())
	}
}

// TestFragmentReportAttribution drives the personalized mix against a stub
// that answers with fragment-assembly headers and checks the report's new
// frag/asm columns and cache-served byte fraction.
func TestFragmentReportAttribution(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 3 {
		case 0:
			w.Header().Set("X-Autowebcache", "fragment-hit")
			w.Header().Set("X-Autowebcache-Fragments", "2/2")
			w.Header().Set("X-Autowebcache-Cached-Bytes", "30")
		case 1:
			w.Header().Set("X-Autowebcache", "assembled")
			w.Header().Set("X-Autowebcache-Fragments", "1/2")
			w.Header().Set("X-Autowebcache-Cached-Bytes", "15")
		default:
			w.Header().Set("X-Autowebcache", "hit")
		}
		_, _ = w.Write([]byte("<html>thirty-six bytes of body.</html>"))
	}))
	defer srv.Close()

	var out strings.Builder
	err := run([]string{
		"-target", srv.URL, "-app", "rubis", "-mix", "personalized",
		"-clients", "2", "-duration", "150ms", "-think", "0s",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"frag", "asm", "hit rate", "cache-served bytes"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestFetchResultCachedBytes(t *testing.T) {
	cases := []struct {
		res  fetchResult
		want int64
	}{
		{fetchResult{outcome: "hit", bytes: 100, cached: -1}, 100},
		{fetchResult{outcome: "semantic-hit", bytes: 40, cached: -1}, 40},
		{fetchResult{outcome: "remote-hit", bytes: 40, cached: -1}, 40},
		{fetchResult{outcome: "coalesced", bytes: 40, cached: -1}, 40},
		{fetchResult{outcome: "miss", bytes: 100, cached: -1}, 0},
		{fetchResult{outcome: "uncacheable", bytes: 100, cached: -1}, 0},
		{fetchResult{outcome: "assembled", bytes: 100, cached: 37}, 37},
		{fetchResult{outcome: "fragment-hit", bytes: 100, cached: 90}, 90},
	}
	for _, tc := range cases {
		if got := tc.res.cachedBytes(); got != tc.want {
			t.Errorf("cachedBytes(%+v) = %d, want %d", tc.res, got, tc.want)
		}
	}
}

// buildRubisServer spins one woven RUBiS app behind an httptest server.
func buildRubisServer(t *testing.T) *httptest.Server {
	t.Helper()
	db := autowebcache.NewDB()
	scale := rubis.Scale{Regions: 2, Categories: 3, Users: 10, Items: 20,
		BidsPerItem: 2, CommentsPerUser: 1, BuyNows: 5, Seed: 1}
	last, err := rubis.Load(db, scale)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := autowebcache.New(db, autowebcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	app := rubis.New(rt.Conn(), scale, last)
	h, err := rt.Weave(app.Handlers(), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// TestMultiTargetMode drives two live servers through -targets and checks
// that the round-robin reached both and the report breaks requests down per
// target.
func TestMultiTargetMode(t *testing.T) {
	srv1 := buildRubisServer(t)
	srv2 := buildRubisServer(t)

	var out strings.Builder
	err := run([]string{
		"-targets", srv1.URL + " , " + srv2.URL + ",",
		"-app", "rubis", "-clients", "4",
		"-duration", "400ms", "-think", "1ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, url := range []string{srv1.URL, srv2.URL} {
		idx := strings.Index(report, "target "+url)
		if idx < 0 {
			t.Fatalf("per-target line for %s missing:\n%s", url, report)
		}
		line := report[idx:]
		if nl := strings.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
		}
		fields := strings.Fields(line)
		// "target <url> <count> requests <errs> errors"
		if len(fields) != 6 || fields[3] != "requests" || fields[5] != "errors" {
			t.Fatalf("malformed per-target line %q", line)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			t.Fatalf("target %s received %q requests:\n%s", url, fields[2], report)
		}
	}
	if !strings.Contains(report, "hit rate") {
		t.Fatalf("summary missing:\n%s", report)
	}
}

// TestMultiTargetDeadTarget: one live node plus one dead URL must degrade —
// run exits nil, the live node serves, and the dead target's share shows up
// as per-target errors instead of aborting the whole generator.
func TestMultiTargetDeadTarget(t *testing.T) {
	live := buildRubisServer(t)
	// A listener that is closed immediately: connection-refused territory.
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()

	var out strings.Builder
	err := run([]string{
		"-targets", live.URL + "," + deadURL,
		"-app", "rubis", "-clients", "4",
		"-duration", "400ms", "-think", "1ms",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen must degrade, not fail, with a dead target: %v", err)
	}
	report := out.String()

	perTarget := func(url string) (reqs, errs int) {
		idx := strings.Index(report, "target "+url)
		if idx < 0 {
			t.Fatalf("per-target line for %s missing:\n%s", url, report)
		}
		line := report[idx:]
		if nl := strings.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
		}
		fields := strings.Fields(line)
		if len(fields) != 6 {
			t.Fatalf("malformed per-target line %q", line)
		}
		reqs, _ = strconv.Atoi(fields[2])
		errs, _ = strconv.Atoi(fields[4])
		return reqs, errs
	}
	liveReqs, liveErrs := perTarget(live.URL)
	deadReqs, deadErrs := perTarget(deadURL)
	// The mix targets DefaultScale IDs while the fixture seeds a tiny
	// database, so a minority of live requests 404 — the live node must
	// still serve the bulk of its share.
	if liveReqs == 0 || liveErrs*2 >= liveReqs {
		t.Fatalf("live target mostly failing: %d requests, %d errors:\n%s", liveReqs, liveErrs, report)
	}
	if deadReqs == 0 || deadErrs != deadReqs {
		t.Fatalf("dead target should fail every attempt: %d requests, %d errors:\n%s",
			deadReqs, deadErrs, report)
	}
}

// TestMultiTargetFlagValidation: an all-empty -targets list is rejected;
// single-target mode prints no per-target breakdown.
func TestMultiTargetFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-targets", " , ,"}, &out); err == nil {
		t.Fatal("expected error for empty -targets")
	}
	srv := buildRubisServer(t)
	out.Reset()
	if err := run([]string{"-target", srv.URL, "-app", "rubis", "-clients", "2",
		"-duration", "200ms", "-think", "1ms"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "target "+srv.URL) {
		t.Fatalf("single-target run printed a per-target breakdown:\n%s", out.String())
	}
}
