// Command loadgen drives a running rubis-server or tpcw-server over real
// HTTP with the paper's closed-loop client model, and reports response
// times and cache outcomes from the X-Autowebcache response header — the
// separate client-emulator machine of the paper's testbed (§5).
//
// Usage:
//
//	loadgen -target http://localhost:8080 -app rubis -clients 50 -duration 10s
//	loadgen -target http://localhost:8081 -app tpcw -mix browsing
//
// Multi-target (cluster) mode plays the front-end load balancer of a
// multi-node web tier: each client round-robins its requests across the
// node list, so every node sees every interaction and the peer tier's
// remote hits and invalidation broadcasts are exercised:
//
//	loadgen -targets http://node1:8080,http://node2:8080,http://node3:8080 -app rubis
//
// With -scrape, loadgen reads each node's /metrics (its -metrics-listen
// address) after the run and appends the server-side counters — requests,
// outcomes, cache occupancy, peer health — to the report:
//
//	loadgen -targets ... -scrape 127.0.0.1:9191,127.0.0.1:9192,127.0.0.1:9193
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"autowebcache/internal/cluster"
	"autowebcache/internal/rubis"
	"autowebcache/internal/telemetry"
	"autowebcache/internal/tpcw"
)

// mixSource is the Request method shared by both applications' mixes.
type mixSource interface {
	Request(rng *rand.Rand, client int) (name, target string)
}

// outcomeStats aggregates one interaction's results.
type outcomeStats struct {
	count    int
	total    time.Duration
	outcomes map[string]int
	errors   int
	// bytesOut counts response-body bytes; bytesCached the subset the
	// server reported (or implied, for whole-page hits) as served from the
	// cache — their ratio is the cache-served byte fraction fragment
	// caching moves.
	bytesOut    int64
	bytesCached int64
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func buildMix(app, mixName string) (mixSource, error) {
	switch app {
	case "rubis":
		s := rubis.DefaultScale()
		switch mixName {
		case "bidding":
			return rubis.BiddingMix(s), nil
		case "browsing":
			return rubis.BrowsingMix(s), nil
		case "personalized":
			// Logged-in sessions: the fragmented pages carry a session
			// parameter, so whole-page keys split per user while fragments
			// stay shared (drive a -fragments server to see the contrast).
			return rubis.PersonalizedMix(s), nil
		}
		return nil, fmt.Errorf("unknown rubis mix %q (bidding, browsing, personalized)", mixName)
	case "tpcw":
		s := tpcw.DefaultScale()
		switch mixName {
		case "shopping":
			return tpcw.ShoppingMix(s), nil
		case "browsing":
			return tpcw.BrowsingMix(s), nil
		}
		return nil, fmt.Errorf("unknown tpcw mix %q (shopping, browsing)", mixName)
	}
	return nil, fmt.Errorf("unknown app %q (rubis, tpcw)", app)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	target := fs.String("target", "http://localhost:8080", "base URL of the server under test")
	targets := fs.String("targets", "",
		"comma-separated base URLs of cluster nodes; clients round-robin across them (overrides -target)")
	app := fs.String("app", "rubis", "application mix to use: rubis or tpcw")
	mixName := fs.String("mix", "", "interaction mix (rubis: bidding, browsing, personalized; tpcw: shopping, browsing)")
	clients := fs.Int("clients", 20, "concurrent emulated clients")
	concurrency := fs.Int("concurrency", 0,
		"parallel client goroutines (0 = use -clients); use with high values to stress the sharded caches")
	duration := fs.Duration("duration", 10*time.Second, "measurement duration")
	think := fs.Duration("think", 50*time.Millisecond, "mean client think time")
	openloop := fs.Bool("openloop", false,
		"open-loop mode: requests depart on a fixed arrival schedule at -rate regardless of response times, and latency is measured from each request's intended send time — the coordinated-omission-free measurement")
	rate := fs.Float64("rate", 200, "open-loop offered load in requests/sec (with -openloop)")
	seed := fs.Int64("seed", 1, "random seed")
	scrape := fs.String("scrape", "",
		"comma-separated admin URLs (the servers' -metrics-listen addresses) to scrape after the run; each node's /metrics joins the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 0 {
		return fmt.Errorf("-concurrency must be positive (0 means use -clients), got %d", *concurrency)
	}
	if *concurrency > 0 {
		*clients = *concurrency
	}
	if *clients <= 0 {
		return fmt.Errorf("need a positive -clients or -concurrency, got %d", *clients)
	}
	if *mixName == "" {
		if *app == "rubis" {
			*mixName = "bidding"
		} else {
			*mixName = "shopping"
		}
	}
	mix, err := buildMix(*app, *mixName)
	if err != nil {
		return err
	}
	targetList := []string{*target}
	if *targets != "" {
		if targetList = cluster.ParsePeerList(*targets); len(targetList) == 0 {
			return fmt.Errorf("-targets %q contains no URLs", *targets)
		}
	}

	// Closed-loop runs are bounded by the context deadline; the open-loop
	// run is bounded by its arrival schedule instead, so in-flight requests
	// at the end of the schedule still complete (the HTTP client timeout
	// bounds stragglers).
	ctx := context.Background()
	if !*openloop {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	httpClient := &http.Client{Timeout: 30 * time.Second}

	var mu sync.Mutex
	stats := make(map[string]*outcomeStats)
	perTarget := make([]int, len(targetList))
	perTargetErrs := make([]int, len(targetList))
	record := func(name string, res fetchResult, d time.Duration, failed bool) {
		mu.Lock()
		defer mu.Unlock()
		s := stats[name]
		if s == nil {
			s = &outcomeStats{outcomes: make(map[string]int)}
			stats[name] = s
		}
		s.count++
		s.total += d
		if failed {
			s.errors++
			return
		}
		s.outcomes[res.outcome]++
		s.bytesOut += res.bytes
		s.bytesCached += res.cachedBytes()
	}

	// attempt issues one request and records it; it returns whether the
	// fetch succeeded. intended is the latency clock's zero point: the
	// actual send time in closed-loop mode, the scheduled departure time in
	// open-loop mode — so open-loop latencies include any queueing delay a
	// slow server imposed on the fixed arrival schedule (the
	// coordinated-omission correction).
	attempt := func(client, reqNum int, rng *rand.Rand, intended time.Time) bool {
		name, path := mix.Request(rng, client)
		// Round-robin across the node list, offset per client so the
		// instantaneous load spreads even with few clients.
		ti := (client + reqNum) % len(targetList)
		res, err := fetch(ctx, httpClient, targetList[ti]+path)
		// Count every attempt, including failures: an unhealthy node
		// must show its full share of the load, not look idle — and a
		// dead node degrades the run (errors in the report), never
		// aborts it.
		mu.Lock()
		perTarget[ti]++
		if err != nil {
			perTargetErrs[ti]++
		}
		mu.Unlock()
		record(name, res, time.Since(intended), err != nil)
		return err == nil
	}

	if *openloop {
		if !validRate(*rate) {
			return fmt.Errorf("-openloop needs a positive finite -rate, got %v", *rate)
		}
		ol := runOpenLoop(*clients, *duration, *rate, *seed, attempt)
		report(out, stats)
		ol.print(out)
	} else {
		var wg sync.WaitGroup
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(client int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed + int64(client)*7919))
				for reqNum := 0; ctx.Err() == nil; reqNum++ {
					attempt(client, reqNum, rng, time.Now())
					if *think > 0 {
						d := time.Duration(rng.ExpFloat64() * float64(*think))
						if d > 5**think {
							d = 5 * *think
						}
						timer := time.NewTimer(d)
						select {
						case <-ctx.Done():
							timer.Stop()
						case <-timer.C:
						}
					}
				}
			}(c)
		}
		wg.Wait()
		report(out, stats)
	}
	if len(targetList) > 1 {
		fmt.Fprintln(out)
		for i, tgt := range targetList {
			fmt.Fprintf(out, "target %-40s %8d requests %8d errors\n", tgt, perTarget[i], perTargetErrs[i])
		}
	}
	if *scrape != "" {
		fmt.Fprintln(out)
		for _, base := range cluster.ParsePeerList(*scrape) {
			if err := scrapeNode(out, httpClient, base); err != nil {
				fmt.Fprintf(out, "scrape %-38s error: %v\n", base, err)
			}
		}
	}
	return nil
}

// scrapeNode fetches one node's /metrics (base is its -metrics-listen URL),
// validates the exposition with the telemetry parser, and prints the
// server-side view of the run: requests and outcomes as the node counted
// them, plus the cluster-health series an operator would watch.
func scrapeNode(out io.Writer, client *http.Client, base string) error {
	url := base
	if !strings.HasSuffix(url, "/metrics") {
		url = strings.TrimSuffix(url, "/") + "/metrics"
	}
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	sc, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	sum := func(name string, match ...string) float64 {
		fam := sc.Families[name]
		if fam == nil {
			return 0
		}
		want := make(map[string]string, len(match))
		for _, p := range match {
			if k, v, ok := strings.Cut(p, "="); ok {
				want[k] = v
			}
		}
		var total float64
		for _, s := range fam.Samples {
			ok := true
			for k, v := range want {
				if s.Labels[k] != v {
					ok = false
					break
				}
			}
			if ok {
				total += s.Value
			}
		}
		return total
	}
	fmt.Fprintf(out, "node %-38s %6.0f requests: %.0f hit, %.0f remote, %.0f miss, %.0f write (%.0f degraded)\n",
		base, sum("awc_requests_total"),
		sum("awc_hits_total")+sum("awc_semantic_hits_total"),
		sum("awc_remote_hits_total"), sum("awc_misses_total"),
		sum("awc_writes_total"), sum("awc_degraded_writes_total"))
	fmt.Fprintf(out, "     %-38s cache %.0f entries / %.0f bytes; peers %.0f healthy, %.0f suspect, %.0f down; %.0f gap flushes\n",
		"", sum("awc_cache_entries", "cache=page"), sum("awc_cache_bytes", "cache=page"),
		sum("awc_cluster_peers", "state=healthy"), sum("awc_cluster_peers", "state=suspect"),
		sum("awc_cluster_peers", "state=down"), sum("awc_cluster_gap_flushes_total"))
	return nil
}

// fetchResult is one response's cache attribution: the outcome header, the
// body size, and — on fragment-assembled pages — the server-reported
// cache-served byte count.
type fetchResult struct {
	outcome string
	bytes   int64
	// cached is the X-Autowebcache-Cached-Bytes value; -1 when the header
	// was absent (whole-page responses don't send it).
	cached int64
}

// cachedBytes resolves the cache-served byte count: fragment pages report
// it explicitly; whole-page responses imply all-or-nothing from the outcome.
func (f fetchResult) cachedBytes() int64 {
	if f.cached >= 0 {
		return f.cached
	}
	switch f.outcome {
	case "hit", "semantic-hit", "remote-hit", "coalesced":
		return f.bytes
	case "not-modified":
		// Zero body bytes moved, but the revalidation was answered from the
		// cache; nothing to attribute either way.
		return 0
	}
	return 0
}

func fetch(ctx context.Context, client *http.Client, url string) (fetchResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fetchResult{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fetchResult{}, err
	}
	defer resp.Body.Close()
	n, _ := io.Copy(io.Discard, resp.Body)
	// 304 Not Modified is a successful zero-body answer (an ETag
	// revalidation served straight from the cache), not an error.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotModified {
		return fetchResult{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	res := fetchResult{outcome: resp.Header.Get("X-Autowebcache"), bytes: n, cached: -1}
	if v := resp.Header.Get("X-Autowebcache-Cached-Bytes"); v != "" {
		if c, perr := strconv.ParseInt(v, 10, 64); perr == nil {
			res.cached = c
		}
	}
	return res, nil
}

func report(out io.Writer, stats map[string]*outcomeStats) {
	names := make([]string, 0, len(stats))
	totalReq := 0
	var totalDur time.Duration
	hits := 0
	var bytesOut, bytesCached int64
	for name, s := range stats {
		names = append(names, name)
		totalReq += s.count
		totalDur += s.total
		hits += s.outcomes["hit"] + s.outcomes["semantic-hit"] + s.outcomes["remote-hit"] + s.outcomes["not-modified"]
		bytesOut += s.bytesOut
		bytesCached += s.bytesCached
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%-26s %8s %12s %6s %6s %6s %6s %6s %6s %6s\n",
		"interaction", "requests", "mean", "hit", "remote", "frag", "asm", "miss", "write", "errs")
	for _, name := range names {
		s := stats[name]
		mean := time.Duration(0)
		if s.count > 0 {
			mean = s.total / time.Duration(s.count)
		}
		fmt.Fprintf(out, "%-26s %8d %12v %6d %6d %6d %6d %6d %6d %6d\n",
			name, s.count, mean.Round(time.Microsecond),
			s.outcomes["hit"]+s.outcomes["semantic-hit"], s.outcomes["remote-hit"],
			s.outcomes["fragment-hit"], s.outcomes["assembled"],
			s.outcomes["miss"],
			// A write-degraded response is still a completed write (the
			// strict-mode cluster broadcast just missed a down peer).
			s.outcomes["write"]+s.outcomes["write-degraded"], s.errors)
	}
	if totalReq > 0 {
		fmt.Fprintf(out, "\ntotal %d requests, mean %v, hit rate %.1f%%",
			totalReq, (totalDur / time.Duration(totalReq)).Round(time.Microsecond),
			100*float64(hits)/float64(totalReq))
		if bytesOut > 0 {
			fmt.Fprintf(out, ", cache-served bytes %.1f%%", 100*float64(bytesCached)/float64(bytesOut))
		}
		fmt.Fprintln(out)
	}
}
