package autowebcache_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"autowebcache"
	"autowebcache/internal/analysis"
	"autowebcache/internal/cache"
	"autowebcache/internal/memdb"
	"autowebcache/internal/telemetry"
	"autowebcache/internal/weave"
)

// scrapeAdmin GETs the admin mux's /metrics and returns the validated
// parse — so every test scrape also round-trips the exposition format.
func scrapeAdmin(t *testing.T, admin *autowebcache.Admin) *telemetry.Scrape {
	t.Helper()
	rr := httptest.NewRecorder()
	admin.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	sc, err := telemetry.ParseText(rr.Body)
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	return sc
}

// TestAdminEndpoints wires one full runtime into an Admin and checks every
// endpoint: /metrics values agree with the layers' own Snapshot()s,
// /statsz serves the same numbers as JSON, /healthz answers.
func TestAdminEndpoints(t *testing.T) {
	db := newDB(t)
	rt, err := autowebcache.New(db, autowebcache.Config{QueryCache: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.Weave(buildApp(t, rt.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	admin := autowebcache.NewAdmin().Watch(rt, h, nil)

	// Scripted traffic: 1 write, then miss + 2 hits on /list.
	get(t, h, "/add?note=x")
	for i := 0; i < 3; i++ {
		get(t, h, "/list")
	}

	sc := scrapeAdmin(t, admin)
	app := h.Snapshot()
	var list *autowebcache.InteractionStats
	for i := range app.Interactions {
		if app.Interactions[i].Name == "List" {
			list = &app.Interactions[i]
		}
	}
	if list == nil {
		t.Fatal("no List interaction in snapshot")
	}
	checks := []struct {
		series string
		labels []string
		want   float64
	}{
		{"awc_requests_total", []string{"handler=List"}, float64(list.Requests)},
		{"awc_hits_total", []string{"handler=List"}, float64(list.Hits)},
		{"awc_misses_total", []string{"handler=List"}, float64(list.Misses)},
		{"awc_writes_total", []string{"handler=Add"}, 1},
		{"awc_response_bytes_total", []string{"handler=List"}, float64(list.BytesOut)},
		{"awc_request_duration_seconds_count", []string{"handler=List", "outcome=hit"}, 2},
		{"awc_cache_hits_total", []string{"cache=page"}, float64(rt.Cache().Snapshot().Hits)},
		{"awc_cache_misses_total", []string{"cache=query"}, float64(rt.QueryCache().Snapshot().Misses)},
	}
	for _, c := range checks {
		got, ok := sc.Value(c.series, c.labels...)
		if !ok {
			t.Fatalf("series %s{%s} missing from /metrics", c.series, strings.Join(c.labels, ","))
		}
		if got != c.want {
			t.Errorf("%s{%s} = %v, want %v", c.series, strings.Join(c.labels, ","), got, c.want)
		}
	}
	// Runtime metrics ride along.
	if v, ok := sc.Value("go_goroutines"); !ok || v <= 0 {
		t.Errorf("go_goroutines = %v, %v", v, ok)
	}

	// Occupancy gauges: segment entries sum to the cache's entry count.
	prob, _ := sc.Value("awc_cache_entries", "cache=page", "segment=probation")
	prot, _ := sc.Value("awc_cache_entries", "cache=page", "segment=protected")
	if int(prob+prot) != rt.Cache().Len() {
		t.Errorf("segment entries %v+%v != cache Len %d", prob, prot, rt.Cache().Len())
	}

	// /statsz serves the same snapshot as JSON.
	rr := httptest.NewRecorder()
	admin.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/statsz status %d", rr.Code)
	}
	var snap autowebcache.Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/statsz not JSON: %v", err)
	}
	if snap.App == nil || snap.Cache == nil || snap.QueryCache == nil {
		t.Fatalf("/statsz missing layers: %+v", snap)
	}
	if snap.Cluster != nil {
		t.Fatal("/statsz reports a cluster on an unclustered runtime")
	}

	// /healthz.
	rr = httptest.NewRecorder()
	admin.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK || rr.Body.String() != "ok\n" {
		t.Fatalf("/healthz: %d %q", rr.Code, rr.Body.String())
	}

	// pprof index answers on the same mux.
	rr = httptest.NewRecorder()
	admin.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", rr.Code)
	}
}

// TestMetricsReferenceCurrent pins docs/METRICS.md to the live registry:
// any metrics change that is not regenerated into the committed reference
// fails here (and in `make docs-check`).
func TestMetricsReferenceCurrent(t *testing.T) {
	want, err := autowebcache.MetricsReference()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("docs/METRICS.md is stale — regenerate with: go run ./cmd/metricsdoc -out docs/METRICS.md")
	}
}

// TestInstrumentedHitPathZeroAlloc guards the tentpole constraint: the
// governed page-hit path stays 0 allocs/op with telemetry fully enabled —
// byte budget + admission filter on the cache, outcome counters, byte
// counters and the per-outcome latency histogram recorded per request, and
// an Admin watching the layers (watching registers scrape-time collectors,
// so it must add nothing to the request path).
func TestInstrumentedHitPathZeroAlloc(t *testing.T) {
	eng, err := analysis.NewEngine(analysis.StrategyWhereMatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(cache.Options{Engine: eng, MaxBytes: 1 << 20, Admission: true})
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1024)
	c.Insert("/hot", body, "text/html", []analysis.Query{
		{SQL: "SELECT a FROM t WHERE b = ?", Args: []memdb.Value{int64(1)}},
	}, 0)
	c.Lookup("/hot") // one-time probation->protected promotion

	stats := weave.NewStats()
	stats.RecordServed("Hot", weave.OutcomeHit, time.Microsecond, 0, len(body), len(body))

	// An Admin watching the cache, as a server would run it.
	admin := autowebcache.NewAdmin().WatchCache(c)
	_ = scrapeAdmin(t, admin) // collectors ran at least once

	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Lookup("/hot"); !ok {
			t.Fatal("unexpected miss")
		}
		stats.RecordServed("Hot", weave.OutcomeHit, time.Microsecond, 0, len(body), len(body))
	})
	if allocs != 0 {
		t.Fatalf("instrumented governed hit path allocates %.1f/op, want 0", allocs)
	}
}

// TestAdminL2Metrics scrapes the disk-tier families in both wiring states:
// without an L2 store every awc_cache_l2_* series is present and zero (the
// series set is deterministic from wiring, not traffic), and with one
// attached the tier-movement counters and occupancy gauges agree with the
// cache's own Snapshot().
func TestAdminL2Metrics(t *testing.T) {
	// No store attached: series exist, all zero.
	rt, err := autowebcache.New(newDB(t), autowebcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := scrapeAdmin(t, autowebcache.NewAdmin().WatchCache(rt.Cache()))
	for _, series := range []string{
		"awc_cache_l2_demotions_total", "awc_cache_l2_promotions_total",
		"awc_cache_l2_hits_total", "awc_cache_l2_restored_entries_total",
		"awc_cache_l2_entries", "awc_cache_l2_bytes", "awc_cache_l2_file_bytes",
	} {
		if v, ok := sc.Value(series); !ok || v != 0 {
			t.Errorf("without L2: %s = %v, %v; want 0, present", series, v, ok)
		}
	}

	// Store attached under a tight L1 budget: demotions and disk puts flow.
	rt2, err := autowebcache.New(newDB(t), autowebcache.Config{
		PageCache: autowebcache.PageCacheConfig{
			MaxBytes: 8 << 10,
			L2Path:   t.TempDir(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	h, err := rt2.Weave(buildApp(t, rt2.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	get(t, h, "/add?note="+strings.Repeat("x", 2048))
	for i := 0; i < 32; i++ {
		get(t, h, fmt.Sprintf("/list?page=%d", i))
	}
	st := rt2.Cache().Snapshot()
	if st.Demotions == 0 {
		t.Fatalf("no demotions under an 8 KiB budget: %+v", st)
	}
	sc = scrapeAdmin(t, autowebcache.NewAdmin().WatchCache(rt2.Cache()))
	for series, want := range map[string]float64{
		"awc_cache_l2_demotions_total": float64(st.Demotions),
		"awc_cache_l2_puts_total":      float64(st.L2.Puts),
		"awc_cache_l2_entries":         float64(st.L2.Entries),
		"awc_cache_l2_bytes":           float64(st.L2.Bytes),
	} {
		if got, ok := sc.Value(series); !ok || got != want {
			t.Errorf("%s = %v, %v; want %v", series, got, ok, want)
		}
	}
	if v, _ := sc.Value("awc_cache_l2_entries"); v == 0 {
		t.Error("demotions recorded but the disk tier reports no entries")
	}
}

// reservePorts grabs n distinct loopback TCP ports and releases them, so a
// test can hand concrete peer addresses to a cluster before the nodes bind.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range listeners {
		l.Close()
	}
	return addrs
}

// TestThreeNodeClusterMetrics boots a 3-node cluster in-process over one
// shared named memdb, scripts hit / miss / cross-node invalidation /
// partition traffic, and asserts every node's scraped /metrics agrees with
// its own Stats — the end-to-end form of the snapshot-collector guarantee.
func TestThreeNodeClusterMetrics(t *testing.T) {
	dbName := fmt.Sprintf("metrics-e2e-%d", time.Now().UnixNano())
	peerAddrs := reservePorts(t, 3)

	type tnode struct {
		rt    *autowebcache.Runtime
		h     *autowebcache.Woven
		node  *autowebcache.ClusterNode
		admin *autowebcache.Admin
	}
	nodes := make([]*tnode, 3)
	for i := range nodes {
		rt, err := autowebcache.Open("memdb:"+dbName, autowebcache.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := rt.DB().CreateTable(autowebcache.TableSpec{
				Name: "notes",
				Columns: []autowebcache.Column{
					{Name: "id", Type: autowebcache.TypeInt, AutoIncrement: true},
					{Name: "note", Type: autowebcache.TypeString},
				},
			}); err != nil {
				t.Fatal(err)
			}
		}
		h, err := rt.Weave(buildApp(t, rt.Conn()), autowebcache.Rules{})
		if err != nil {
			t.Fatal(err)
		}
		var peers []string
		for j, a := range peerAddrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node, err := rt.Cluster(h, autowebcache.ClusterConfig{
			ListenPeer:      peerAddrs[i],
			Peers:           peers,
			StrictBroadcast: true,
			ProbeInterval:   -1, // no background probes: the script is deterministic
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[i] = &tnode{rt: rt, h: h, node: node,
			admin: autowebcache.NewAdmin().Watch(rt, h, node)}
	}

	outcome := func(n *tnode, target string) string {
		rr := get(t, n.h, target)
		if rr.Code != http.StatusOK {
			t.Fatalf("%s: status %d", target, rr.Code)
		}
		return rr.Header().Get("X-Autowebcache")
	}

	// Scripted traffic: seed a row, miss then hit on node 1, write on
	// node 2 (strong cluster-wide invalidation), re-read on node 1.
	if o := outcome(nodes[0], "/add?note=first"); o != "write" {
		t.Fatalf("seed write outcome %q", o)
	}
	if o := outcome(nodes[0], "/list"); o != "miss" && o != "remote-hit" {
		t.Fatalf("cold read outcome %q", o)
	}
	if o := outcome(nodes[0], "/list"); o != "hit" {
		t.Fatalf("warm read outcome %q, want hit", o)
	}
	if o := outcome(nodes[1], "/add?note=second"); o != "write" {
		t.Fatalf("cross-node write outcome %q", o)
	}
	if o := outcome(nodes[0], "/list"); o == "hit" || o == "semantic-hit" {
		t.Fatalf("node 1 served %q after node 2's write: invalidation lost", o)
	}

	// Every node's scrape must agree with its own snapshots, exactly.
	for i, n := range nodes {
		sc := scrapeAdmin(t, n.admin)
		app := n.h.Snapshot()
		for _, is := range app.Interactions {
			for series, want := range map[string]uint64{
				"awc_requests_total": is.Requests,
				"awc_hits_total":     is.Hits,
				"awc_misses_total":   is.Misses,
				"awc_writes_total":   is.Writes,
			} {
				got, ok := sc.Value(series, "handler="+is.Name)
				if !ok {
					t.Fatalf("node %d: %s{handler=%s} missing", i+1, series, is.Name)
				}
				if got != float64(want) {
					t.Errorf("node %d: %s{handler=%s} = %v, stats say %d", i+1, series, is.Name, got, want)
				}
			}
		}
		cs := n.node.Snapshot()
		for series, want := range map[string]uint64{
			"awc_cluster_inv_applied_total":            cs.InvApplied,
			"awc_cluster_inv_sent_total":               cs.InvSent,
			"awc_cluster_remote_hits_total":            cs.RemoteHits,
			"awc_cluster_inv_broadcast_failures_total": cs.InvBroadcastFailures,
		} {
			got, ok := sc.Value(series)
			if !ok {
				t.Fatalf("node %d: %s missing", i+1, series)
			}
			if got != float64(want) {
				t.Errorf("node %d: %s = %v, stats say %d", i+1, series, got, want)
			}
		}
		// Two peers, each with a one-hot state vector summing to 1.
		for peer := range n.node.PeerStates() {
			var sum float64
			for _, state := range []string{"healthy", "suspect", "down"} {
				v, ok := sc.Value("awc_cluster_peer_state", "peer="+peer, "state="+state)
				if !ok {
					t.Fatalf("node %d: peer_state{%s,%s} missing", i+1, peer, state)
				}
				sum += v
			}
			if sum != 1 {
				t.Errorf("node %d: peer %s one-hot sums to %v", i+1, peer, sum)
			}
		}
	}

	// The cluster-wide write must have been applied by the peers: across
	// the other two nodes, at least one invalidation was applied.
	applied := nodes[0].node.Snapshot().InvApplied + nodes[2].node.Snapshot().InvApplied
	if applied == 0 {
		t.Fatal("no peer applied node 2's invalidation broadcast")
	}

	// Partition: kill node 3's peer tier. A strict-broadcast write on
	// node 1 still succeeds but reports write-degraded, and the metrics
	// mirror it.
	nodes[2].node.Close()
	if o := outcome(nodes[0], "/add?note=third"); o != "write-degraded" {
		t.Fatalf("write with a dead peer: outcome %q, want write-degraded", o)
	}
	sc := scrapeAdmin(t, nodes[0].admin)
	if v, _ := sc.Value("awc_degraded_writes_total", "handler=Add"); v < 1 {
		t.Errorf("awc_degraded_writes_total{handler=Add} = %v after degraded write", v)
	}
	if v, _ := sc.Value("awc_cluster_inv_broadcast_failures_total"); v < 1 {
		t.Errorf("awc_cluster_inv_broadcast_failures_total = %v after degraded write", v)
	}
	if v, _ := sc.Value("awc_writes_total", "handler=Add"); v != float64(nodes[0].h.Snapshot().Total.Writes) {
		t.Errorf("awc_writes_total disagrees with stats after degraded write: %v", v)
	}
}
