package autowebcache

import (
	"autowebcache/internal/telemetry"
	"autowebcache/internal/weave"
)

// This file holds the snapshot collectors behind Admin.Watch*: each Watch
// registers one collector that, at scrape time, takes the layer's
// Snapshot() and renders it as metric families. The layers stay the single
// source of truth — /metrics can never disagree with /statsz, because both
// read the same snapshot — and the request hot paths carry no extra work
// beyond the counters they already maintain.
//
// Naming: every series is prefixed awc_ ("autowebcache"); counters end in
// _total, histograms in _duration_seconds, gauges in neither. Help strings
// name the internal stat each series mirrors — docs/METRICS.md is
// generated from them (cmd/metricsdoc), so keep them accurate.

// appCounter maps one per-handler counter family to the InteractionStats
// field it mirrors.
type appCounter struct {
	name string
	help string
	get  func(*InteractionStats) uint64
}

var appCounters = []appCounter{
	{"awc_requests_total", "Requests served, by handler. Mirrors weave.InteractionStats.Requests.",
		func(s *InteractionStats) uint64 { return s.Requests }},
	{"awc_hits_total", "Strong-consistency cache hits, including coalesced (by handler). Mirrors weave.InteractionStats.Hits.",
		func(s *InteractionStats) uint64 { return s.Hits }},
	{"awc_not_modified_total", "Conditional requests answered 304 via If-None-Match, zero body bytes (subset of hits). Mirrors weave.InteractionStats.NotModified.",
		func(s *InteractionStats) uint64 { return s.NotModified }},
	{"awc_semantic_hits_total", "Cache hits under a semantic TTL window. Mirrors weave.InteractionStats.SemanticHits.",
		func(s *InteractionStats) uint64 { return s.SemanticHits }},
	{"awc_coalesced_total", "Misses served by a concurrent flight's result (subset of hits). Mirrors weave.InteractionStats.Coalesced.",
		func(s *InteractionStats) uint64 { return s.Coalesced }},
	{"awc_remote_hits_total", "Local misses served by a cluster peer's cache. Mirrors weave.InteractionStats.RemoteHits.",
		func(s *InteractionStats) uint64 { return s.RemoteHits }},
	{"awc_fragment_hits_total", "Pages whose every cacheable fragment came from the cache. Mirrors weave.InteractionStats.FragmentHits.",
		func(s *InteractionStats) uint64 { return s.FragmentHits }},
	{"awc_assembled_total", "Pages assembled from a mix of fragment hits and generations. Mirrors weave.InteractionStats.Assembled.",
		func(s *InteractionStats) uint64 { return s.Assembled }},
	{"awc_misses_total", "Cache misses that executed the handler. Mirrors weave.InteractionStats.Misses.",
		func(s *InteractionStats) uint64 { return s.Misses }},
	{"awc_writes_total", "Write interactions (each invalidates dependent pages). Mirrors weave.InteractionStats.Writes.",
		func(s *InteractionStats) uint64 { return s.Writes }},
	{"awc_degraded_writes_total", "Writes whose strict-mode cluster broadcast missed a peer (subset of writes). Mirrors weave.InteractionStats.DegradedWrites.",
		func(s *InteractionStats) uint64 { return s.DegradedWrites }},
	{"awc_uncacheable_total", "Requests that bypassed the cache by rule (or ran unwoven). Mirrors weave.InteractionStats.Uncacheable.",
		func(s *InteractionStats) uint64 { return s.Uncacheable }},
	{"awc_errors_total", "Handler responses with a non-200 status. Mirrors weave.InteractionStats.Errors.",
		func(s *InteractionStats) uint64 { return s.Errors }},
	{"awc_send_failures_total", "Responses whose write to the client failed mid-send; their latencies are excluded from the histogram. Mirrors weave.InteractionStats.SendFailures.",
		func(s *InteractionStats) uint64 { return s.SendFailures }},
	{"awc_pages_invalidated_total", "Pages removed by this handler's write invalidations. Mirrors weave.InteractionStats.PagesInvalidated.",
		func(s *InteractionStats) uint64 { return s.PagesInvalidated }},
	{"awc_fragments_served_total", "Cacheable fragments served from the cache across assembled responses. Mirrors weave.InteractionStats.FragmentsServed.",
		func(s *InteractionStats) uint64 { return s.FragmentsServed }},
	{"awc_fragments_considered_total", "Cacheable fragments considered across assembled responses. Mirrors weave.InteractionStats.FragmentsTotal.",
		func(s *InteractionStats) uint64 { return s.FragmentsTotal }},
	{"awc_response_bytes_total", "Response-body bytes of cache-governed responses. Mirrors weave.InteractionStats.BytesOut.",
		func(s *InteractionStats) uint64 { return s.BytesOut }},
	{"awc_cached_response_bytes_total", "Subset of response bytes served from the cache. Mirrors weave.InteractionStats.BytesCached.",
		func(s *InteractionStats) uint64 { return s.BytesCached }},
}

// WatchApp exports the weave layer: one counter family per mirrored
// InteractionStats field, labelled by handler, plus the per-outcome request
// latency histogram and the flight-abort counter. Every handler the Woven
// carries gets its series emitted on every scrape — zeros included — so a
// scrape's series set is deterministic from wiring, not from traffic.
func (a *Admin) WatchApp(w *Woven) *Admin {
	a.woven = w
	handlers := w.Handlers()
	a.reg.Collect(func(g *telemetry.Gatherer) {
		for _, c := range appCounters {
			g.Declare(c.name, telemetry.TypeCounter, c.help, "handler")
		}
		g.Declare("awc_request_duration_seconds", telemetry.TypeHistogram,
			"Request latency by handler and outcome. Mirrors weave.InteractionStats.Latencies.",
			"handler", "outcome")
		g.Declare("awc_flight_aborts_total", telemetry.TypeCounter,
			"Freshly generated pages discarded because an invalidation raced the generation (epoch guard). Mirrors weave.Woven.FlightAborts.")

		app := w.Snapshot()
		byName := make(map[string]*InteractionStats, len(app.Interactions))
		for i := range app.Interactions {
			byName[app.Interactions[i].Name] = &app.Interactions[i]
		}
		var zero InteractionStats
		for _, h := range handlers {
			is := byName[h.Name]
			if is == nil {
				is = &zero
			}
			for _, c := range appCounters {
				g.Value(c.name, float64(c.get(is)), h.Name)
			}
			for _, ol := range is.Latencies {
				g.Histo("awc_request_duration_seconds", ol.Latency, h.Name, string(ol.Outcome))
			}
		}
		// Interactions recorded outside the handler table (direct Stats
		// callers) still surface, after the declared handlers.
		for name, is := range byName {
			if !knownHandler(handlers, name) {
				for _, c := range appCounters {
					g.Value(c.name, float64(c.get(is)), name)
				}
				for _, ol := range is.Latencies {
					g.Histo("awc_request_duration_seconds", ol.Latency, name, string(ol.Outcome))
				}
			}
		}
		g.Value("awc_flight_aborts_total", float64(app.FlightAborts))
	})
	return a
}

func knownHandler(handlers []HandlerInfo, name string) bool {
	for _, h := range handlers {
		if h.Name == name {
			return true
		}
	}
	return false
}

// cacheCounter maps one cache counter family to the cache.Stats /
// qrcache.Stats field it mirrors. The two tiers share family names and are
// told apart by the cache label ("page", "query"); fields only one tier
// has emit only that tier's sample.
type cacheCounter struct {
	name  string
	help  string
	page  func(*CacheStats) (uint64, bool)
	query func(*QueryCacheStats) (uint64, bool)
}

func yes(v uint64) (uint64, bool) { return v, true }
func no() (uint64, bool)          { return 0, false }

var cacheCounters = []cacheCounter{
	{"awc_cache_hits_total", "Cache lookups served. Mirrors cache.Stats.Hits / qrcache.Stats.Hits.",
		func(s *CacheStats) (uint64, bool) { return yes(s.Hits) },
		func(s *QueryCacheStats) (uint64, bool) { return yes(s.Hits) }},
	{"awc_cache_misses_total", "Cache lookups missed. Mirrors cache.Stats.Misses / qrcache.Stats.Misses.",
		func(s *CacheStats) (uint64, bool) { return yes(s.Misses) },
		func(s *QueryCacheStats) (uint64, bool) { return yes(s.Misses) }},
	{"awc_cache_inserts_total", "Pages inserted. Mirrors cache.Stats.Inserts (page cache only).",
		func(s *CacheStats) (uint64, bool) { return yes(s.Inserts) },
		func(s *QueryCacheStats) (uint64, bool) { return no() }},
	{"awc_cache_invalidations_total", "Entries removed by write invalidation. Mirrors cache.Stats.Invalidations / qrcache.Stats.Invalidations.",
		func(s *CacheStats) (uint64, bool) { return yes(s.Invalidations) },
		func(s *QueryCacheStats) (uint64, bool) { return yes(s.Invalidations) }},
	{"awc_cache_expirations_total", "Entries removed because their TTL passed. Mirrors cache.Stats.Expirations (page cache only).",
		func(s *CacheStats) (uint64, bool) { return yes(s.Expirations) },
		func(s *QueryCacheStats) (uint64, bool) { return no() }},
	{"awc_cache_writes_seen_total", "InvalidateWrite calls analysed. Mirrors cache.Stats.WritesSeen (page cache only).",
		func(s *CacheStats) (uint64, bool) { return yes(s.WritesSeen) },
		func(s *QueryCacheStats) (uint64, bool) { return no() }},
	{"awc_cache_admission_rejects_total", "Inserts refused by the TinyLFU admission filter. Mirrors cache.Stats.AdmissionRejects / qrcache.Stats.AdmissionRejects.",
		func(s *CacheStats) (uint64, bool) { return yes(s.AdmissionRejects) },
		func(s *QueryCacheStats) (uint64, bool) { return yes(s.AdmissionRejects) }},
	{"awc_cache_oversize_rejects_total", "Inserts refused because one entry exceeds MaxBytes. Mirrors cache.Stats.OversizeRejects / qrcache.Stats.OversizeRejects.",
		func(s *CacheStats) (uint64, bool) { return yes(s.OversizeRejects) },
		func(s *QueryCacheStats) (uint64, bool) { return yes(s.OversizeRejects) }},
	{"awc_cache_gzip_compressions_total", "Gzip compressor runs — exactly one per insert of a compressible page, never on the serve path. Mirrors cache.Stats.GzipCompressions (page cache only).",
		func(s *CacheStats) (uint64, bool) { return yes(s.GzipCompressions) },
		func(s *QueryCacheStats) (uint64, bool) { return no() }},
}

// declareCacheFamilies declares the families shared by the page and query
// tiers (safe to re-declare identically when both are watched).
func declareCacheFamilies(g *telemetry.Gatherer) {
	for _, c := range cacheCounters {
		g.Declare(c.name, telemetry.TypeCounter, c.help, "cache")
	}
	g.Declare("awc_cache_evictions_total", telemetry.TypeCounter,
		"Entries removed by capacity pressure, by segment. Mirrors cache.Stats.EvictionsProbation/EvictionsProtected.",
		"cache", "segment")
	g.Declare("awc_cache_entries", telemetry.TypeGauge,
		"Entries resident, by segment. Mirrors cache.Stats.ProbationEntries/ProtectedEntries.",
		"cache", "segment")
	g.Declare("awc_cache_bytes", telemetry.TypeGauge,
		"Accounted bytes of linked entries, by segment. Mirrors cache.Stats.ProbationBytes/ProtectedBytes.",
		"cache", "segment")
	g.Declare("awc_cache_accounted_bytes", telemetry.TypeGauge,
		"Total accounted memory charged against MaxBytes, including in-flight insert reservations. Mirrors cache.Stats.Bytes.",
		"cache")
	g.Declare("awc_cache_dep_templates", telemetry.TypeGauge,
		"Dependency-table template count. Mirrors cache.Stats.DepTemplates (page cache only).",
		"cache")
	g.Declare("awc_cache_dep_instances", telemetry.TypeGauge,
		"Dependency-table (template, vector) instance count. Mirrors cache.Stats.DepInstances (page cache only).",
		"cache")
	g.Declare("awc_cache_variant_bytes", telemetry.TypeGauge,
		"Resident gzip-variant payload bytes, a subset of accounted bytes. Mirrors cache.Stats.VariantBytes (page cache only).",
		"cache")
}

// l2Counter maps one disk-tier counter family to the cache.Stats field
// (tier-movement counters) or embedded l2.Stats field it mirrors. The
// families exist only for the page cache — the query tier has no disk tier
// — so they carry no cache label. They are declared and emitted on every
// scrape, zeros without an attached store, keeping the series set
// deterministic from wiring.
type l2Counter struct {
	name string
	help string
	get  func(*CacheStats) uint64
}

var l2Counters = []l2Counter{
	{"awc_cache_l2_demotions_total", "Evictions that landed in the disk tier instead of discarding. Mirrors cache.Stats.Demotions.",
		func(s *CacheStats) uint64 { return s.Demotions }},
	{"awc_cache_l2_promotions_total", "Disk-tier hits admitted back into the memory tier. Mirrors cache.Stats.Promotions.",
		func(s *CacheStats) uint64 { return s.Promotions }},
	{"awc_cache_l2_promote_aborts_total", "Promotions abandoned because an invalidation or flush raced them. Mirrors cache.Stats.PromoteAborts.",
		func(s *CacheStats) uint64 { return s.PromoteAborts }},
	{"awc_cache_l2_hits_total", "Disk-tier reads that found a live record. Mirrors cache.Stats.L2.Hits.",
		func(s *CacheStats) uint64 { return s.L2.Hits }},
	{"awc_cache_l2_misses_total", "Disk-tier reads that found nothing (or a corrupt record). Mirrors cache.Stats.L2.Misses.",
		func(s *CacheStats) uint64 { return s.L2.Misses }},
	{"awc_cache_l2_expirations_total", "Disk records discarded on expiry, at read or boot. Mirrors cache.Stats.L2.Expirations.",
		func(s *CacheStats) uint64 { return s.L2.Expirations }},
	{"awc_cache_l2_puts_total", "Demotions appended to the disk tier. Mirrors cache.Stats.L2.Puts.",
		func(s *CacheStats) uint64 { return s.L2.Puts }},
	{"awc_cache_l2_removes_total", "Disk-tier keys tombstoned by invalidation. Mirrors cache.Stats.L2.Removes.",
		func(s *CacheStats) uint64 { return s.L2.Removes }},
	{"awc_cache_l2_flushes_total", "Full disk-tier flushes. Mirrors cache.Stats.L2.Flushes.",
		func(s *CacheStats) uint64 { return s.L2.Flushes }},
	{"awc_cache_l2_segments_dropped_total", "Sealed segment files dropped for the disk byte budget. Mirrors cache.Stats.L2.SegmentsDropped.",
		func(s *CacheStats) uint64 { return s.L2.SegmentsDropped }},
	{"awc_cache_l2_dropped_records_total", "Live keys lost to segment drops. Mirrors cache.Stats.L2.DroppedRecords.",
		func(s *CacheStats) uint64 { return s.L2.DroppedRecords }},
	{"awc_cache_l2_journal_syncs_total", "Fsyncs of the disk tier's invalidation journal. Mirrors cache.Stats.L2.JournalSyncs.",
		func(s *CacheStats) uint64 { return s.L2.JournalSyncs }},
	{"awc_cache_l2_torn_tails_total", "Torn file tails truncated during crash recovery. Mirrors cache.Stats.L2.TornTails.",
		func(s *CacheStats) uint64 { return s.L2.TornTails }},
	{"awc_cache_l2_restored_entries_total", "Live keys restored by the last boot (warm-restart size). Mirrors cache.Stats.L2.RestoredEntries.",
		func(s *CacheStats) uint64 { return s.L2.RestoredEntries }},
	{"awc_cache_l2_snapshots_total", "Disk-tier index snapshots written. Mirrors cache.Stats.L2.Snapshots.",
		func(s *CacheStats) uint64 { return s.L2.Snapshots }},
	{"awc_cache_l2_cold_starts_total", "Boots that had to discard the disk tier (corrupt or incomplete state). Mirrors cache.Stats.L2.ColdStarts.",
		func(s *CacheStats) uint64 { return s.L2.ColdStarts }},
}

// WatchCache exports the page cache under cache="page", plus the disk-tier
// (L2) families.
func (a *Admin) WatchCache(c *PageCache) *Admin {
	a.pcache = c
	a.reg.Collect(func(g *telemetry.Gatherer) {
		declareCacheFamilies(g)
		for _, lc := range l2Counters {
			g.Declare(lc.name, telemetry.TypeCounter, lc.help)
		}
		g.Declare("awc_cache_l2_entries", telemetry.TypeGauge,
			"Live keys in the disk-tier index. Mirrors cache.Stats.L2.Entries.")
		g.Declare("awc_cache_l2_bytes", telemetry.TypeGauge,
			"Framed record bytes of live disk-tier entries. Mirrors cache.Stats.L2.Bytes.")
		g.Declare("awc_cache_l2_file_bytes", telemetry.TypeGauge,
			"Total disk-tier segment file bytes, including dead records awaiting segment drop. Mirrors cache.Stats.L2.FileBytes.")
		st := c.Snapshot()
		for _, lc := range l2Counters {
			g.Value(lc.name, float64(lc.get(&st)))
		}
		g.Value("awc_cache_l2_entries", float64(st.L2.Entries))
		g.Value("awc_cache_l2_bytes", float64(st.L2.Bytes))
		g.Value("awc_cache_l2_file_bytes", float64(st.L2.FileBytes))
		for _, cc := range cacheCounters {
			if v, ok := cc.page(&st); ok {
				g.Value(cc.name, float64(v), "page")
			}
		}
		g.Value("awc_cache_evictions_total", float64(st.EvictionsProbation), "page", "probation")
		g.Value("awc_cache_evictions_total", float64(st.EvictionsProtected), "page", "protected")
		g.Value("awc_cache_entries", float64(st.ProbationEntries), "page", "probation")
		g.Value("awc_cache_entries", float64(st.ProtectedEntries), "page", "protected")
		g.Value("awc_cache_bytes", float64(st.ProbationBytes), "page", "probation")
		g.Value("awc_cache_bytes", float64(st.ProtectedBytes), "page", "protected")
		g.Value("awc_cache_accounted_bytes", float64(st.Bytes), "page")
		g.Value("awc_cache_dep_templates", float64(st.DepTemplates), "page")
		g.Value("awc_cache_dep_instances", float64(st.DepInstances), "page")
		g.Value("awc_cache_variant_bytes", float64(st.VariantBytes), "page")
	})
	return a
}

// WatchQueryCache exports the back-end result cache under cache="query".
func (a *Admin) WatchQueryCache(q *QueryResultCache) *Admin {
	a.qcache = q
	a.reg.Collect(func(g *telemetry.Gatherer) {
		declareCacheFamilies(g)
		st := q.Snapshot()
		for _, cc := range cacheCounters {
			if v, ok := cc.query(&st); ok {
				g.Value(cc.name, float64(v), "query")
			}
		}
		g.Value("awc_cache_evictions_total", float64(st.EvictionsProbation), "query", "probation")
		g.Value("awc_cache_evictions_total", float64(st.EvictionsProtected), "query", "protected")
		g.Value("awc_cache_entries", float64(st.ProbationEntries), "query", "probation")
		g.Value("awc_cache_entries", float64(st.ProtectedEntries), "query", "protected")
		g.Value("awc_cache_bytes", float64(st.ProbationBytes), "query", "probation")
		g.Value("awc_cache_bytes", float64(st.ProtectedBytes), "query", "protected")
		g.Value("awc_cache_accounted_bytes", float64(st.Bytes), "query")
	})
	return a
}

// clusterCounter maps one cluster counter family to the cluster.Stats
// field it mirrors.
type clusterCounter struct {
	name string
	help string
	get  func(*ClusterStats) uint64
}

var clusterCounters = []clusterCounter{
	{"awc_cluster_remote_hits_total", "Fetches served by a peer. Mirrors cluster.Stats.RemoteHits.",
		func(s *ClusterStats) uint64 { return s.RemoteHits }},
	{"awc_cluster_remote_misses_total", "Fetches no peer could serve. Mirrors cluster.Stats.RemoteMisses.",
		func(s *ClusterStats) uint64 { return s.RemoteMisses }},
	{"awc_cluster_fetch_aborts_total", "Fetched pages discarded because an invalidation raced the fetch. Mirrors cluster.Stats.FetchAborts.",
		func(s *ClusterStats) uint64 { return s.FetchAborts }},
	{"awc_cluster_fetch_errors_total", "Peer calls that failed mid-fetch. Mirrors cluster.Stats.FetchErrors.",
		func(s *ClusterStats) uint64 { return s.FetchErrors }},
	{"awc_cluster_offers_sent_total", "Pages replicated to their owner nodes. Mirrors cluster.Stats.OffersSent.",
		func(s *ClusterStats) uint64 { return s.OffersSent }},
	{"awc_cluster_offers_rejected_total", "Replica offers an owner's byte budget refused. Mirrors cluster.Stats.OffersRejected.",
		func(s *ClusterStats) uint64 { return s.OffersRejected }},
	{"awc_cluster_inv_sent_total", "Invalidation broadcasts delivered, counted per peer. Mirrors cluster.Stats.InvSent.",
		func(s *ClusterStats) uint64 { return s.InvSent }},
	{"awc_cluster_inv_broadcast_failures_total", "Invalidation/flush sends a peer never applied (down, partitioned, timed out). Mirrors cluster.Stats.InvBroadcastFailures.",
		func(s *ClusterStats) uint64 { return s.InvBroadcastFailures }},
	{"awc_cluster_ping_failures_total", "Background health probes that failed. Mirrors cluster.Stats.PingFailures.",
		func(s *ClusterStats) uint64 { return s.PingFailures }},
	{"awc_cluster_breaker_skips_total", "Peer calls short-circuited by an open circuit breaker. Mirrors cluster.Stats.BreakerSkips.",
		func(s *ClusterStats) uint64 { return s.BreakerSkips }},
	{"awc_cluster_gap_flushes_total", "Quarantine flushes forced by a detected invalidation-sequence gap. Mirrors cluster.Stats.GapFlushes.",
		func(s *ClusterStats) uint64 { return s.GapFlushes }},
	{"awc_cluster_stale_fetch_rejects_total", "Fetched pages discarded because the exporter had missed invalidations. Mirrors cluster.Stats.StaleFetchRejects.",
		func(s *ClusterStats) uint64 { return s.StaleFetchRejects }},
	{"awc_cluster_stale_put_rejects_total", "Replica offers refused because the offerer had missed invalidations. Mirrors cluster.Stats.StalePutRejects.",
		func(s *ClusterStats) uint64 { return s.StalePutRejects }},
	{"awc_cluster_gets_served_total", "Peer fetches this node answered. Mirrors cluster.Stats.GetsServed.",
		func(s *ClusterStats) uint64 { return s.GetsServed }},
	{"awc_cluster_puts_applied_total", "Replica pages this node accepted. Mirrors cluster.Stats.PutsApplied.",
		func(s *ClusterStats) uint64 { return s.PutsApplied }},
	{"awc_cluster_puts_rejected_total", "Replica pages this node refused (over budget or stale). Mirrors cluster.Stats.PutsRejected.",
		func(s *ClusterStats) uint64 { return s.PutsRejected }},
	{"awc_cluster_inv_applied_total", "Peer invalidations this node applied. Mirrors cluster.Stats.InvApplied.",
		func(s *ClusterStats) uint64 { return s.InvApplied }},
	{"awc_cluster_flush_applied_total", "Peer flushes this node applied. Mirrors cluster.Stats.FlushApplied.",
		func(s *ClusterStats) uint64 { return s.FlushApplied }},
	{"awc_cluster_pages_removed_total", "Pages removed by peer invalidations. Mirrors cluster.Stats.PagesRemoved.",
		func(s *ClusterStats) uint64 { return s.PagesRemoved }},
	{"awc_cluster_results_removed_total", "Result sets removed by peer invalidations. Mirrors cluster.Stats.ResultsRemoved.",
		func(s *ClusterStats) uint64 { return s.ResultsRemoved }},
}

// peerStateNames are the one-hot dimensions of awc_cluster_peer_state.
var peerStateNames = []string{"healthy", "suspect", "down"}

// WatchCluster exports the peer tier: the mirrored counters, per-peer
// health as a one-hot gauge (awc_cluster_peer_state{peer,state} is 1 for
// the peer's current state, 0 otherwise), the per-state totals, and the
// fetch/offer/broadcast latency histograms.
func (a *Admin) WatchCluster(n *ClusterNode) *Admin {
	a.node = n
	a.reg.Collect(func(g *telemetry.Gatherer) {
		for _, c := range clusterCounters {
			g.Declare(c.name, telemetry.TypeCounter, c.help)
		}
		g.Declare("awc_cluster_peer_state", telemetry.TypeGauge,
			"Peer health one-hot: 1 for the peer's current state, 0 for its other states. Mirrors cluster.Node.PeerStates.",
			"peer", "state")
		g.Declare("awc_cluster_peers", telemetry.TypeGauge,
			"Peers currently in each health state. Mirrors cluster.Stats.PeersHealthy/PeersSuspect/PeersDown.",
			"state")
		g.Declare("awc_cluster_fetch_duration_seconds", telemetry.TypeHistogram,
			"Latency of Fetch (owner walk after a local miss, hit or not; walks that only met open breakers are excluded). Mirrors cluster.Stats.FetchLatency.")
		g.Declare("awc_cluster_offer_duration_seconds", telemetry.TypeHistogram,
			"Latency of Offer (page replication to every owner). Mirrors cluster.Stats.OfferLatency.")
		g.Declare("awc_cluster_broadcast_duration_seconds", telemetry.TypeHistogram,
			"Latency of one invalidation/flush broadcast, including its serialization wait. Mirrors cluster.Stats.BroadcastLatency.")

		st := n.Snapshot()
		for _, c := range clusterCounters {
			g.Value(c.name, float64(c.get(&st)))
		}
		for addr, ps := range n.PeerStates() {
			cur := ps.String()
			for _, state := range peerStateNames {
				v := 0.0
				if state == cur {
					v = 1
				}
				g.Value("awc_cluster_peer_state", v, addr, state)
			}
		}
		g.Value("awc_cluster_peers", float64(st.PeersHealthy), "healthy")
		g.Value("awc_cluster_peers", float64(st.PeersSuspect), "suspect")
		g.Value("awc_cluster_peers", float64(st.PeersDown), "down")
		g.Histo("awc_cluster_fetch_duration_seconds", st.FetchLatency)
		g.Histo("awc_cluster_offer_duration_seconds", st.OfferLatency)
		g.Histo("awc_cluster_broadcast_duration_seconds", st.BroadcastLatency)
	})
	return a
}

// Compile-time check that the weave types the collectors rely on keep the
// shapes the facade re-exports.
var _ = weave.AppStats{}
