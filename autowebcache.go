// Package autowebcache is a Go reproduction of AutoWebCache (Bouchenak,
// Cox, Dropsho, Mittal, Zwaenepoel — "Caching Dynamic Web Content:
// Designing and Analysing an Aspect-Oriented Solution", Middleware 2006): a
// middleware that transparently caches fully formed dynamic web pages in
// front of a web application while keeping them strongly consistent with
// the backing database.
//
// The package is a thin façade over the implementation packages:
//
//   - memdb — the embedded SQL database substrate (the paper's MySQL);
//   - sqlparser — the SQL dialect, templates and value vectors;
//   - analysis — the query-analysis engine with the paper's three
//     invalidation strategies (ColumnOnly, WhereMatch, AC-extraQuery);
//   - cache — the page cache: page table + dependency table, TTL and
//     semantic windows, replacement policies;
//   - weave — the AOP substitute: handler advice (around/after) and the
//     query-capturing connection;
//   - rubis, tpcw — the paper's two benchmark applications;
//   - workload, bench — the client emulator and the per-figure experiment
//     harness.
//
// # Usage
//
// Build a database, create a Runtime with the caching configuration, hand
// the Runtime's Conn to your application handlers, and weave them:
//
//	db := autowebcache.NewDB()
//	// ... create tables, load data ...
//	rt, err := autowebcache.New(db, autowebcache.Config{Strategy: autowebcache.ExtraQuery})
//	// build handlers that query rt.Conn(), then:
//	h, err := rt.Weave(handlers, autowebcache.Rules{})
//	http.ListenAndServe(addr, h)
//
// Handlers remain ordinary http.HandlerFuncs with no caching code — the
// paper's transparency claim, realised with middleware interposition
// instead of AspectJ weaving.
package autowebcache

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"autowebcache/internal/analysis"
	"autowebcache/internal/cache"
	"autowebcache/internal/cache/l2"
	"autowebcache/internal/cluster"
	"autowebcache/internal/datasource"
	"autowebcache/internal/memdb"
	"autowebcache/internal/qrcache"
	"autowebcache/internal/servlet"
	"autowebcache/internal/weave"

	// The shipped datasource drivers, so Open resolves "memdb" and
	// "sqlite:<path>" DSNs out of the box (memdb registers through the memdb
	// import above).
	_ "autowebcache/internal/datasource/sqlite"
)

// Re-exported types: the public names a downstream user needs.
type (
	// DB is the embedded SQL database.
	DB = memdb.DB
	// Conn is the query interface handlers use (the JDBC analogue).
	Conn = memdb.Conn
	// Rows is a query result set.
	Rows = memdb.Rows
	// TableSpec declares a table.
	TableSpec = memdb.TableSpec
	// Column declares a table column.
	Column = memdb.Column
	// HandlerInfo describes one web interaction.
	HandlerInfo = servlet.HandlerInfo
	// Segment is one piece of a fragmented page: a cacheable fragment with
	// its own vary dimensions, TTL and dependency set, or an uncacheable
	// hole. Declare a decomposition in HandlerInfo.Fragments and enable it
	// with Rules.Fragments.
	Segment = servlet.Segment
	// Rules are the weaving rules (uncacheable pages, semantic windows,
	// fragment-granular caching).
	Rules = weave.Rules
	// Woven is a cache-enabled application handler.
	Woven = weave.Woven
	// Strategy selects the invalidation strategy.
	Strategy = analysis.Strategy
	// Replacement selects the eviction policy.
	Replacement = cache.ReplacementPolicy
	// PageCache is the page cache with its statistics.
	PageCache = cache.Cache
	// Engine is the query-analysis engine.
	Engine = analysis.Engine
	// QueryResultCache is the §9-extension back-end result cache.
	QueryResultCache = qrcache.Conn
	// ClusterNode is one member of the cache cluster's peer tier.
	ClusterNode = cluster.Node
)

// Column types for TableSpec declarations.
const (
	TypeInt    = memdb.TypeInt
	TypeFloat  = memdb.TypeFloat
	TypeString = memdb.TypeString
)

// Invalidation strategies (§3.2 of the paper), in increasing precision.
const (
	ColumnOnly = analysis.StrategyColumnOnly
	WhereMatch = analysis.StrategyWhereMatch
	// ExtraQuery is the paper's default ("AC-extraQuery").
	ExtraQuery = analysis.StrategyExtraQuery
)

// Replacement policies for bounded caches.
const (
	LRU  = cache.LRU
	LFU  = cache.LFU
	FIFO = cache.FIFO
)

// NewDB creates an empty embedded database.
func NewDB() *DB { return memdb.New() }

// ComposeSegments renders a fragmented handler's segments in order as one
// whole page — the monolithic form used when fragment caching is off.
func ComposeSegments(segs []Segment) http.HandlerFunc {
	return servlet.ComposeSegments(segs)
}

// ParseByteSize parses a human-readable byte size for cache budgets: a
// plain integer is bytes; k/m/g suffixes (case-insensitive, optional
// trailing b or ib) scale by 1024. "" and "0" mean unbounded.
func ParseByteSize(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, nil
	}
	mult := int64(1)
	for _, suf := range []struct {
		text string
		mult int64
	}{
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(t, suf.text) {
			t = strings.TrimSuffix(t, suf.text)
			mult = suf.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("autowebcache: bad byte size %q (want e.g. 1048576, 64m, 2gib)", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("autowebcache: negative byte size %q", s)
	}
	if n > math.MaxInt64/mult {
		return 0, fmt.Errorf("autowebcache: byte size %q overflows int64", s)
	}
	return n * mult, nil
}

// PageCacheConfig bounds and tunes the page-cache tier.
type PageCacheConfig struct {
	// MaxEntries bounds the page cache (0 = unbounded).
	MaxEntries int
	// MaxBytes bounds the page cache's accounted memory — body, key,
	// dependency and variant overhead per page — independently of
	// MaxEntries (0 = unbounded). Setting it enables segmented
	// (probation/protected) eviction: pages with proven reuse are evicted
	// only after one-hit pages are exhausted.
	MaxBytes int64
	// Replacement picks the eviction policy for bounded caches (default
	// LRU).
	Replacement Replacement
	// Shards is the page cache's lock-stripe count, rounded up to a power
	// of two (0 picks GOMAXPROCS rounded likewise). Higher values reduce
	// contention between concurrent request goroutines.
	Shards int
	// L2Path enables the disk (SSD) tier: a directory where pages evicted
	// from the in-memory tier are demoted instead of discarded, and from
	// which a restart recovers its working set warm. Invalidations sweep
	// both tiers before the write returns, so the §3.2 guarantee is
	// unchanged. Empty disables the tier. The Runtime owns the store:
	// Runtime.Close spills the in-memory tier into it and closes it.
	L2Path string
	// L2MaxBytes bounds the disk tier's file footprint (0 = unbounded).
	// When the budget is exceeded the oldest segment file is dropped whole
	// — disk-tier loss is only ever extra misses, never staleness.
	L2MaxBytes int64
}

// QueryCacheConfig stacks the back-end query-result cache under the page
// cache — the paper's §9 extension ("A database query-results cache is
// complementary to webpage caching").
type QueryCacheConfig struct {
	// Enabled turns the query-result cache on.
	Enabled bool
	// MaxEntries bounds its entry count (0 = unbounded).
	MaxEntries int
	// MaxBytes bounds its accounted memory (0 = unbounded).
	MaxBytes int64
}

// ServeConfig controls the HTTP representation of cached pages: which
// content-encoding variants are built at insert time and whether pages
// carry validators for conditional requests. These knobs shape the entry
// at insert (compress once, hash once) so the serve path stays
// allocation-free; they do not change what is cached or when it is
// invalidated.
type ServeConfig struct {
	// Encodings lists the content-encodings the cache may serve, chosen
	// per request from Accept-Encoding. Recognised codings are "identity"
	// and "gzip"; anything else is a configuration error. Listing "gzip"
	// makes each insert compress the page once and store the variant
	// alongside the identity bytes (kept only when strictly smaller).
	// Empty means identity-only — the historical behaviour.
	Encodings []string
	// GzipMinBytes is the smallest body worth compressing (0 = 256).
	// Negotiation of smaller pages falls back to identity.
	GzipMinBytes int
	// ETags precomputes a strong, content-derived validator per entry at
	// insert; responses then carry it and If-None-Match revalidations are
	// answered 304 with zero body bytes straight from the cache.
	ETags bool
}

// Config configures a Runtime. Capacity, query-cache and serving knobs live
// in the PageCache, QueryResults and Serve groups; the flat fields beneath
// them are deprecated aliases kept so existing callers keep compiling.
type Config struct {
	// Strategy is the invalidation strategy; defaults to ExtraQuery.
	Strategy Strategy
	// Admission gates inserts under byte-budget pressure with a TinyLFU
	// filter: at the budget, an entry is cached only when its request
	// frequency beats the eviction victim's. It applies to each cache tier
	// that has a byte budget (PageCache.MaxBytes for the page cache,
	// QueryResults.MaxBytes for the query-result cache); setting it with no
	// budget anywhere is a configuration error.
	Admission bool
	// Disabled builds the baseline configuration: handlers still work and
	// statistics are collected, but nothing is cached (the paper's
	// "No cache" comparison).
	Disabled bool

	// PageCache bounds and tunes the page-cache tier.
	PageCache PageCacheConfig
	// QueryResults configures the §9 back-end query-result cache.
	QueryResults QueryCacheConfig
	// Serve configures content-encoding variants and ETag validators.
	Serve ServeConfig

	// Deprecated: set PageCache.MaxEntries. Applies only when the grouped
	// field is unset.
	MaxEntries int
	// Deprecated: set PageCache.MaxBytes.
	MaxBytes int64
	// Deprecated: set PageCache.Replacement.
	Replacement Replacement
	// Deprecated: set PageCache.Shards.
	Shards int
	// Deprecated: set QueryResults.Enabled.
	QueryCache bool
	// Deprecated: set QueryResults.MaxEntries.
	QueryCacheEntries int
	// Deprecated: set QueryResults.MaxBytes.
	QueryCacheBytes int64
}

// normalized folds the deprecated flat aliases into the grouped fields —
// each alias applies only when its grouped field is unset, so callers
// mixing old and new spellings get the new one — and validates the Serve
// group.
func (cfg Config) normalized() (Config, error) {
	if cfg.PageCache.MaxEntries == 0 {
		cfg.PageCache.MaxEntries = cfg.MaxEntries
	}
	if cfg.PageCache.MaxBytes == 0 {
		cfg.PageCache.MaxBytes = cfg.MaxBytes
	}
	if cfg.PageCache.Replacement == 0 {
		cfg.PageCache.Replacement = cfg.Replacement
	}
	if cfg.PageCache.Shards == 0 {
		cfg.PageCache.Shards = cfg.Shards
	}
	if !cfg.QueryResults.Enabled {
		cfg.QueryResults.Enabled = cfg.QueryCache
	}
	if cfg.QueryResults.MaxEntries == 0 {
		cfg.QueryResults.MaxEntries = cfg.QueryCacheEntries
	}
	if cfg.QueryResults.MaxBytes == 0 {
		cfg.QueryResults.MaxBytes = cfg.QueryCacheBytes
	}
	for _, enc := range cfg.Serve.Encodings {
		switch strings.ToLower(strings.TrimSpace(enc)) {
		case "identity", "gzip":
		default:
			return cfg, fmt.Errorf("autowebcache: unknown content-encoding %q (identity, gzip)", enc)
		}
	}
	return cfg, nil
}

// gzipEnabled reports whether the Serve group asks for gzip variants.
func (s ServeConfig) gzipEnabled() bool {
	for _, enc := range s.Encodings {
		if strings.EqualFold(strings.TrimSpace(enc), "gzip") {
			return true
		}
	}
	return false
}

// Runtime wires a database backend to an analysis engine, a page cache and
// a query-capturing connection.
type Runtime struct {
	// db is set only when the backend is the embedded memdb engine; other
	// drivers leave it nil and are reachable through raw.
	db     *memdb.DB
	raw    Conn
	engine *analysis.Engine
	cache  *cache.Cache
	l2     *l2.Store
	qcache *qrcache.Conn
	conn   Conn
}

// New creates a Runtime over the embedded database.
func New(db *DB, cfg Config) (*Runtime, error) {
	if db == nil {
		return nil, fmt.Errorf("autowebcache: nil database")
	}
	return NewFromConn(db, cfg)
}

// Open connects to the database named by a driver DSN — "memdb" for a fresh
// in-memory engine, "memdb:<name>" for a process-shared instance,
// "sqlite:<path>" for the shared-file backend — and builds a Runtime over
// it. Seed the returned Runtime's RawConn before weaving handlers.
func Open(dsn string, cfg Config) (*Runtime, error) {
	conn, err := datasource.Open(dsn)
	if err != nil {
		return nil, err
	}
	return NewFromConn(conn, cfg)
}

// NewFromConn builds a Runtime over any datasource connection. Backends
// implementing datasource.SchemaReporter give the analysis engine its
// precise paths (column attribution in multi-table reads, auto-increment
// exoneration); others get the conservative analysis, which invalidates
// more but never serves stale pages.
func NewFromConn(conn Conn, cfg Config) (*Runtime, error) {
	if conn == nil {
		return nil, fmt.Errorf("autowebcache: nil connection")
	}
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if cfg.Strategy == 0 {
		cfg.Strategy = ExtraQuery
	}
	var schema analysis.Schema
	if sr, ok := conn.(analysis.Schema); ok {
		schema = sr
	}
	engine, err := analysis.NewEngine(cfg.Strategy, schema)
	if err != nil {
		return nil, err
	}
	if cfg.Admission && cfg.PageCache.MaxBytes <= 0 && cfg.QueryResults.MaxBytes <= 0 {
		return nil, fmt.Errorf("autowebcache: Admission requires a byte budget (PageCache.MaxBytes or QueryResults.MaxBytes)")
	}
	rt := &Runtime{raw: conn, engine: engine}
	if db, ok := conn.(*memdb.DB); ok {
		rt.db = db
	}
	base := conn
	if cfg.QueryResults.Enabled {
		rt.qcache, err = qrcache.NewWithOptions(conn, engine, qrcache.Options{
			MaxEntries: cfg.QueryResults.MaxEntries,
			MaxBytes:   cfg.QueryResults.MaxBytes,
			Admission:  cfg.Admission && cfg.QueryResults.MaxBytes > 0,
		})
		if err != nil {
			return nil, err
		}
		base = rt.qcache
	}
	if cfg.Disabled {
		rt.conn = base
		return rt, nil
	}
	if cfg.PageCache.L2Path != "" {
		rt.l2, err = l2.Open(l2.Options{
			Dir:      cfg.PageCache.L2Path,
			MaxBytes: cfg.PageCache.L2MaxBytes,
		})
		if err != nil {
			return nil, err
		}
	}
	rt.cache, err = cache.New(cache.Options{
		Engine:       engine,
		MaxEntries:   cfg.PageCache.MaxEntries,
		MaxBytes:     cfg.PageCache.MaxBytes,
		Admission:    cfg.Admission && cfg.PageCache.MaxBytes > 0,
		Replacement:  cfg.PageCache.Replacement,
		Shards:       cfg.PageCache.Shards,
		Gzip:         cfg.Serve.gzipEnabled(),
		GzipMinBytes: cfg.Serve.GzipMinBytes,
		ETags:        cfg.Serve.ETags,
		L2:           rt.l2,
	})
	if err != nil {
		if rt.l2 != nil {
			rt.l2.Close()
		}
		return nil, err
	}
	rt.conn = weave.NewConn(base, engine)
	return rt, nil
}

// Conn returns the connection application handlers must query through. In
// the cached configuration it records each query's consistency information
// (the paper's JDBC join point); in the Disabled configuration it is the
// raw database.
func (rt *Runtime) Conn() Conn { return rt.conn }

// DB returns the underlying embedded database, or nil when the Runtime was
// opened over a different backend (use RawConn then).
func (rt *Runtime) DB() *DB { return rt.db }

// RawConn returns the unrecorded backend connection — the one to seed data
// through, so bootstrap queries don't pollute the analysis.
func (rt *Runtime) RawConn() Conn { return rt.raw }

// Close releases the Runtime's resources. With a disk cache tier
// configured it first spills the in-memory tier into the store and closes
// it — snapshot written, journal durable — so the next boot serves the
// working set warm; then it closes backend drivers that hold resources
// (file handles, connection pools). The memdb backend holds none.
func (rt *Runtime) Close() error {
	var firstErr error
	if rt.cache != nil {
		firstErr = rt.cache.Close()
	}
	if c, ok := rt.raw.(datasource.Closer); ok {
		if err := c.Close(); firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Cache returns the page cache (nil when Disabled).
func (rt *Runtime) Cache() *PageCache { return rt.cache }

// QueryCache returns the back-end result cache (nil unless enabled).
func (rt *Runtime) QueryCache() *QueryResultCache { return rt.qcache }

// Engine returns the query-analysis engine.
func (rt *Runtime) Engine() *Engine { return rt.engine }

// Weave builds the cache-enabled application: read handlers get cache
// check/insert advice, write handlers get invalidation advice, and the
// rules mark uncacheable pages and semantic windows.
func (rt *Runtime) Weave(handlers []HandlerInfo, rules Rules) (*Woven, error) {
	return weave.New(handlers, rt.cache, rules)
}

// ClusterConfig configures the optional peer tier turning N autowebcache
// processes into one logical cache (consistent-hash key ownership,
// cross-node fetch and replication, cluster-wide write invalidation).
type ClusterConfig struct {
	// ListenPeer is the peer-protocol listen address (e.g. "10.0.0.1:9080");
	// as configured, it is also the node's ring identity, so it must match
	// the string the other nodes carry in their Peers lists. Empty disables
	// clustering (Cluster then returns a nil node) — but combined with a
	// non-empty Peers it is a configuration error.
	ListenPeer string
	// Advertise overrides the ring identity when ListenPeer is not the
	// address peers dial (all-interfaces listens, NAT).
	Advertise string
	// Peers are the OTHER nodes' peer addresses. Empty is pure local mode.
	Peers []string
	// Invalidation is "strong" (default: writes return only after every
	// reachable peer has invalidated, §3.2 cluster-wide) or "async"
	// (best-effort fire-and-forget, time-lagged peers — the §8 trade).
	Invalidation string
	// VNodes is the ring's virtual-node count per node (0 = 64).
	VNodes int
	// Replication is how many owner nodes hold each key (0 = 1).
	Replication int
	// StrictBroadcast surfaces unreachable peers on strong-mode writes as a
	// "write-degraded" outcome (the write still succeeds and invalidates
	// locally; the missed peers quarantine-flush on rejoin). Default false:
	// failures are only counted in the node stats.
	StrictBroadcast bool
	// ProbeInterval is the peer health-probe cadence (0 = 250ms, negative
	// disables); down peers redial on a jittered exponential backoff.
	ProbeInterval time.Duration
	// FailureThreshold is the consecutive-failure count that marks a peer
	// down and opens its circuit breaker (0 = 3).
	FailureThreshold int
}

// Cluster boots the peer tier over the Runtime's caches and attaches it to
// the woven handler: handler misses consult the key's owner nodes before
// executing, and every cache invalidation fans out to the peers. The
// returned node must be Closed on shutdown. Requires the cached
// configuration (Config.Disabled unset).
//
// An empty ListenPeer disables clustering and returns a nil node, so
// callers can pass their flag values straight through; Peers without
// ListenPeer is rejected as a misconfiguration rather than silently
// ignored.
func (rt *Runtime) Cluster(handler *Woven, cfg ClusterConfig) (*ClusterNode, error) {
	if cfg.ListenPeer == "" {
		if len(cfg.Peers) > 0 {
			return nil, fmt.Errorf("autowebcache: ClusterConfig.Peers set without ListenPeer")
		}
		return nil, nil
	}
	if rt.cache == nil {
		return nil, fmt.Errorf("autowebcache: clustering requires the cache (Config.Disabled must be unset)")
	}
	var async bool
	switch strings.ToLower(cfg.Invalidation) {
	case "", "strong":
	case "async":
		async = true
	default:
		return nil, fmt.Errorf("autowebcache: unknown invalidation mode %q (strong, async)", cfg.Invalidation)
	}
	clcfg := cluster.Config{
		Listen:           cfg.ListenPeer,
		Advertise:        cfg.Advertise,
		Peers:            cfg.Peers,
		Cache:            rt.cache,
		QueryCache:       rt.qcache,
		Async:            async,
		VNodes:           cfg.VNodes,
		Replication:      cfg.Replication,
		StrictBroadcast:  cfg.StrictBroadcast,
		ProbeInterval:    cfg.ProbeInterval,
		FailureThreshold: cfg.FailureThreshold,
	}
	if rt.l2 != nil {
		// The disk tier doubles as the invalidation-sequence journal, so a
		// restarted node that provably missed nothing rejoins without the
		// quarantine flush wiping its warm store. The conditional assignment
		// matters: a nil *l2.Store in the interface field would read as
		// non-nil to the node.
		clcfg.SeqJournal = rt.l2
	}
	node, err := cluster.New(clcfg)
	if err != nil {
		return nil, err
	}
	if err := node.Start(); err != nil {
		return nil, err
	}
	handler.SetRemote(node)
	return node, nil
}
