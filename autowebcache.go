// Package autowebcache is a Go reproduction of AutoWebCache (Bouchenak,
// Cox, Dropsho, Mittal, Zwaenepoel — "Caching Dynamic Web Content:
// Designing and Analysing an Aspect-Oriented Solution", Middleware 2006): a
// middleware that transparently caches fully formed dynamic web pages in
// front of a web application while keeping them strongly consistent with
// the backing database.
//
// The package is a thin façade over the implementation packages:
//
//   - memdb — the embedded SQL database substrate (the paper's MySQL);
//   - sqlparser — the SQL dialect, templates and value vectors;
//   - analysis — the query-analysis engine with the paper's three
//     invalidation strategies (ColumnOnly, WhereMatch, AC-extraQuery);
//   - cache — the page cache: page table + dependency table, TTL and
//     semantic windows, replacement policies;
//   - weave — the AOP substitute: handler advice (around/after) and the
//     query-capturing connection;
//   - rubis, tpcw — the paper's two benchmark applications;
//   - workload, bench — the client emulator and the per-figure experiment
//     harness.
//
// # Usage
//
// Build a database, create a Runtime with the caching configuration, hand
// the Runtime's Conn to your application handlers, and weave them:
//
//	db := autowebcache.NewDB()
//	// ... create tables, load data ...
//	rt, err := autowebcache.New(db, autowebcache.Config{Strategy: autowebcache.ExtraQuery})
//	// build handlers that query rt.Conn(), then:
//	h, err := rt.Weave(handlers, autowebcache.Rules{})
//	http.ListenAndServe(addr, h)
//
// Handlers remain ordinary http.HandlerFuncs with no caching code — the
// paper's transparency claim, realised with middleware interposition
// instead of AspectJ weaving.
package autowebcache

import (
	"fmt"

	"autowebcache/internal/analysis"
	"autowebcache/internal/cache"
	"autowebcache/internal/memdb"
	"autowebcache/internal/qrcache"
	"autowebcache/internal/servlet"
	"autowebcache/internal/weave"
)

// Re-exported types: the public names a downstream user needs.
type (
	// DB is the embedded SQL database.
	DB = memdb.DB
	// Conn is the query interface handlers use (the JDBC analogue).
	Conn = memdb.Conn
	// Rows is a query result set.
	Rows = memdb.Rows
	// TableSpec declares a table.
	TableSpec = memdb.TableSpec
	// Column declares a table column.
	Column = memdb.Column
	// HandlerInfo describes one web interaction.
	HandlerInfo = servlet.HandlerInfo
	// Rules are the weaving rules (uncacheable pages, semantic windows).
	Rules = weave.Rules
	// Woven is a cache-enabled application handler.
	Woven = weave.Woven
	// Strategy selects the invalidation strategy.
	Strategy = analysis.Strategy
	// Replacement selects the eviction policy.
	Replacement = cache.ReplacementPolicy
	// PageCache is the page cache with its statistics.
	PageCache = cache.Cache
	// Engine is the query-analysis engine.
	Engine = analysis.Engine
	// QueryResultCache is the §9-extension back-end result cache.
	QueryResultCache = qrcache.Conn
)

// Column types for TableSpec declarations.
const (
	TypeInt    = memdb.TypeInt
	TypeFloat  = memdb.TypeFloat
	TypeString = memdb.TypeString
)

// Invalidation strategies (§3.2 of the paper), in increasing precision.
const (
	ColumnOnly = analysis.StrategyColumnOnly
	WhereMatch = analysis.StrategyWhereMatch
	// ExtraQuery is the paper's default ("AC-extraQuery").
	ExtraQuery = analysis.StrategyExtraQuery
)

// Replacement policies for bounded caches.
const (
	LRU  = cache.LRU
	LFU  = cache.LFU
	FIFO = cache.FIFO
)

// NewDB creates an empty embedded database.
func NewDB() *DB { return memdb.New() }

// Config configures a Runtime.
type Config struct {
	// Strategy is the invalidation strategy; defaults to ExtraQuery.
	Strategy Strategy
	// MaxEntries bounds the page cache (0 = unbounded).
	MaxEntries int
	// Replacement picks the eviction policy for bounded caches (default
	// LRU).
	Replacement Replacement
	// Shards is the page cache's lock-stripe count, rounded up to a power
	// of two (0 picks GOMAXPROCS rounded likewise). Higher values reduce
	// contention between concurrent request goroutines.
	Shards int
	// Disabled builds the baseline configuration: handlers still work and
	// statistics are collected, but nothing is cached (the paper's
	// "No cache" comparison).
	Disabled bool
	// QueryCache additionally stacks a back-end query-result cache under
	// the page cache — the paper's §9 extension ("A database query-results
	// cache is complementary to webpage caching"). QueryCacheEntries bounds
	// it (0 = unbounded).
	QueryCache        bool
	QueryCacheEntries int
}

// Runtime wires a database to an analysis engine, a page cache and a
// query-capturing connection.
type Runtime struct {
	db     *memdb.DB
	engine *analysis.Engine
	cache  *cache.Cache
	qcache *qrcache.Conn
	conn   memdb.Conn
}

// New creates a Runtime over db.
func New(db *DB, cfg Config) (*Runtime, error) {
	if db == nil {
		return nil, fmt.Errorf("autowebcache: nil database")
	}
	if cfg.Strategy == 0 {
		cfg.Strategy = ExtraQuery
	}
	engine, err := analysis.NewEngine(cfg.Strategy, db)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{db: db, engine: engine}
	var base memdb.Conn = db
	if cfg.QueryCache {
		rt.qcache, err = qrcache.New(db, engine, cfg.QueryCacheEntries)
		if err != nil {
			return nil, err
		}
		base = rt.qcache
	}
	if cfg.Disabled {
		rt.conn = base
		return rt, nil
	}
	rt.cache, err = cache.New(cache.Options{
		Engine:      engine,
		MaxEntries:  cfg.MaxEntries,
		Replacement: cfg.Replacement,
		Shards:      cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	rt.conn = weave.NewConn(base, engine)
	return rt, nil
}

// Conn returns the connection application handlers must query through. In
// the cached configuration it records each query's consistency information
// (the paper's JDBC join point); in the Disabled configuration it is the
// raw database.
func (rt *Runtime) Conn() Conn { return rt.conn }

// DB returns the underlying database.
func (rt *Runtime) DB() *DB { return rt.db }

// Cache returns the page cache (nil when Disabled).
func (rt *Runtime) Cache() *PageCache { return rt.cache }

// QueryCache returns the back-end result cache (nil unless enabled).
func (rt *Runtime) QueryCache() *QueryResultCache { return rt.qcache }

// Engine returns the query-analysis engine.
func (rt *Runtime) Engine() *Engine { return rt.engine }

// Weave builds the cache-enabled application: read handlers get cache
// check/insert advice, write handlers get invalidation advice, and the
// rules mark uncacheable pages and semantic windows.
func (rt *Runtime) Weave(handlers []HandlerInfo, rules Rules) (*Woven, error) {
	return weave.New(handlers, rt.cache, rules)
}
