package autowebcache

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"autowebcache/internal/cache"
	"autowebcache/internal/cluster"
	"autowebcache/internal/qrcache"
	"autowebcache/internal/telemetry"
	"autowebcache/internal/weave"
)

// Re-exported statistics types: the per-layer snapshots the Admin surface
// serves, usable from the facade without importing internal packages. Every
// layer follows one convention — Snapshot() returns a point-in-time copy —
// and these are the types it returns.
type (
	// AppStats is the weave layer's snapshot: per-interaction statistics,
	// their aggregate, and the epoch guard's abort count.
	AppStats = weave.AppStats
	// InteractionStats aggregates the outcomes of one interaction type,
	// including the PR-7 DegradedWrites counter and per-outcome latency
	// histograms.
	InteractionStats = weave.InteractionStats
	// CacheStats are the page cache's counters, including the per-segment
	// (probation/protected) occupancy and eviction splits.
	CacheStats = cache.Stats
	// QueryCacheStats are the result cache's counters.
	QueryCacheStats = qrcache.Stats
	// ClusterStats are the peer tier's counters and gauges, including
	// PingFailures, BreakerSkips, GapFlushes and the peer-operation latency
	// histograms.
	ClusterStats = cluster.Stats
	// HistSnapshot is one latency histogram's point-in-time state.
	HistSnapshot = telemetry.HistSnapshot
	// MetricFamily describes one exported series family (name, type, help,
	// labels) — what the generated docs/METRICS.md is built from.
	MetricFamily = telemetry.FamilyMeta
)

// Snapshot is the unified cross-layer statistics view: everything the
// process measures, in one struct, from one call (Admin.Snapshot). Nil
// pointers mark layers that are not wired (no query cache, no cluster).
// This is also what GET /statsz on the admin mux serves as JSON.
type Snapshot struct {
	App        *AppStats        `json:"app,omitempty"`
	Cache      *CacheStats      `json:"cache,omitempty"`
	QueryCache *QueryCacheStats `json:"query_cache,omitempty"`
	Cluster    *ClusterStats    `json:"cluster,omitempty"`
	// Peers maps each peer address to its health state ("healthy",
	// "suspect", "down").
	Peers map[string]string `json:"peers,omitempty"`
}

// Admin is the operator surface of one autowebcache process: a telemetry
// registry plus an HTTP mux serving
//
//	GET /metrics      — Prometheus text format (all watched layers)
//	GET /statsz       — the unified Snapshot as JSON
//	GET /healthz      — liveness (200 "ok")
//	/debug/pprof/...  — the standard net/http/pprof profiles
//
// Wire it with Watch (or the per-layer WatchApp/WatchCache/
// WatchQueryCache/WatchCluster) and serve Handler() on an admin listener —
// both servers expose it behind -metrics-listen. Watching adds snapshot
// collectors only: the watched layers keep their existing atomic counters
// as the single source of truth, and the registry reads a Snapshot() at
// scrape time, so instrumentation adds nothing to the request hot paths.
type Admin struct {
	reg *telemetry.Registry
	mux *http.ServeMux

	woven  *Woven
	pcache *PageCache
	qcache *QueryResultCache
	node   *ClusterNode
}

// NewAdmin creates an Admin with runtime (Go process) metrics registered
// and the endpoint mux built. Watch layers before serving.
func NewAdmin() *Admin {
	a := &Admin{reg: telemetry.NewRegistry(), mux: http.NewServeMux()}
	telemetry.RegisterRuntimeMetrics(a.reg)
	a.mux.Handle("/metrics", a.reg.Handler())
	a.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	a.mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a.Snapshot())
	})
	a.mux.HandleFunc("/debug/pprof/", pprof.Index)
	a.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	a.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	a.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	a.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return a
}

// Registry returns the underlying telemetry registry, for callers that
// want to add their own series next to the cache's.
func (a *Admin) Registry() *telemetry.Registry { return a.reg }

// Handler returns the admin HTTP handler (metrics + statsz + healthz +
// pprof).
func (a *Admin) Handler() http.Handler { return a.mux }

// Families returns every series family the registry exposes, sorted by
// name — the machine-readable form of docs/METRICS.md.
func (a *Admin) Families() []MetricFamily { return a.reg.Families() }

// Watch wires every layer the Runtime and its companions carry: the woven
// app, the page cache, the query-result cache and the cluster node. Any
// nil argument (and any layer the Runtime does not have) is skipped, so
// servers can pass their values straight through.
func (a *Admin) Watch(rt *Runtime, w *Woven, node *ClusterNode) *Admin {
	if w != nil {
		a.WatchApp(w)
	}
	if rt != nil {
		if rt.Cache() != nil {
			a.WatchCache(rt.Cache())
		}
		if rt.QueryCache() != nil {
			a.WatchQueryCache(rt.QueryCache())
		}
	}
	if node != nil {
		a.WatchCluster(node)
	}
	return a
}

// Snapshot returns the unified statistics of every watched layer.
func (a *Admin) Snapshot() Snapshot {
	var s Snapshot
	if a.woven != nil {
		app := a.woven.Snapshot()
		s.App = &app
	}
	if a.pcache != nil {
		st := a.pcache.Snapshot()
		s.Cache = &st
	}
	if a.qcache != nil {
		st := a.qcache.Snapshot()
		s.QueryCache = &st
	}
	if a.node != nil {
		st := a.node.Snapshot()
		s.Cluster = &st
		peers := a.node.PeerStates()
		s.Peers = make(map[string]string, len(peers))
		for addr, st := range peers {
			s.Peers[addr] = st.String()
		}
	}
	return s
}
