package autowebcache_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"autowebcache"
)

// exercise drives a runtime through enough traffic to expose its capacity
// and tier wiring: four distinct pages (so bounds bite), one revisit.
func exercise(t *testing.T, rt *autowebcache.Runtime) {
	t.Helper()
	h, err := rt.Weave(buildApp(t, rt.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"/list", "/list?p=1", "/list?p=2", "/list?p=3", "/list"} {
		if rr := get(t, h, target); rr.Code != http.StatusOK {
			t.Fatalf("GET %s: %d", target, rr.Code)
		}
	}
}

// TestConfigFlatAliasesEquivalent proves the deprecated flat Config fields
// and the grouped sub-structs build identical runtimes: same tiers present,
// same bounds enforced, same cache occupancy after identical traffic.
func TestConfigFlatAliasesEquivalent(t *testing.T) {
	flat := autowebcache.Config{
		MaxEntries:        2,
		MaxBytes:          1 << 20,
		Replacement:       autowebcache.LFU,
		Shards:            4,
		QueryCache:        true,
		QueryCacheEntries: 8,
		QueryCacheBytes:   1 << 16,
	}
	grouped := autowebcache.Config{
		PageCache: autowebcache.PageCacheConfig{
			MaxEntries:  2,
			MaxBytes:    1 << 20,
			Replacement: autowebcache.LFU,
			Shards:      4,
		},
		QueryResults: autowebcache.QueryCacheConfig{
			Enabled:    true,
			MaxEntries: 8,
			MaxBytes:   1 << 16,
		},
	}
	rtFlat, err := autowebcache.New(newDB(t), flat)
	if err != nil {
		t.Fatal(err)
	}
	rtGrouped, err := autowebcache.New(newDB(t), grouped)
	if err != nil {
		t.Fatal(err)
	}
	exercise(t, rtFlat)
	exercise(t, rtGrouped)
	if rtFlat.QueryCache() == nil || rtGrouped.QueryCache() == nil {
		t.Fatal("query-result cache missing under one spelling")
	}
	sf, sg := rtFlat.Cache().Snapshot(), rtGrouped.Cache().Snapshot()
	if sf != sg {
		t.Fatalf("identical traffic, different cache stats:\nflat:    %+v\ngrouped: %+v", sf, sg)
	}
	if sf.Entries > 2 {
		t.Fatalf("MaxEntries=2 not enforced: %d entries", sf.Entries)
	}
	if sf.Evictions == 0 {
		t.Fatal("bounded cache saw 4 pages but evicted nothing")
	}
}

// TestConfigGroupedFieldWinsOverAlias: when both spellings are set, the
// grouped field is authoritative.
func TestConfigGroupedFieldWinsOverAlias(t *testing.T) {
	rt, err := autowebcache.New(newDB(t), autowebcache.Config{
		MaxEntries: 1,
		PageCache:  autowebcache.PageCacheConfig{MaxEntries: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	exercise(t, rt)
	if s := rt.Cache().Snapshot(); s.Entries != 4 || s.Evictions != 0 {
		t.Fatalf("grouped MaxEntries=100 lost to alias 1: %+v", s)
	}
}

func TestConfigRejectsUnknownEncoding(t *testing.T) {
	_, err := autowebcache.New(newDB(t), autowebcache.Config{
		Serve: autowebcache.ServeConfig{Encodings: []string{"br"}},
	})
	if err == nil {
		t.Fatal("unknown content-encoding accepted")
	}
}

// TestServeConfigEndToEnd: the facade's Serve group reaches the serve path —
// gzip negotiation and ETag revalidation work through Runtime + Weave.
func TestServeConfigEndToEnd(t *testing.T) {
	rt, err := autowebcache.New(newDB(t), autowebcache.Config{
		Serve: autowebcache.ServeConfig{
			Encodings:    []string{"identity", "gzip"},
			GzipMinBytes: 1,
			ETags:        true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := rt.RawConn().Exec(context.Background(), "INSERT INTO notes (note) VALUES (?)", "a long enough note to be worth compressing, repeated and repeated"); err != nil {
			t.Fatal(err)
		}
	}
	h, err := rt.Weave(buildApp(t, rt.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	plain := get(t, h, "/list")
	etag := plain.Header().Get("ETag")
	if etag == "" {
		t.Fatal("ETags on, no ETag served")
	}

	req := httptest.NewRequest(http.MethodGet, "/list", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	zipped := httptest.NewRecorder()
	h.ServeHTTP(zipped, req)
	if zipped.Header().Get("Content-Encoding") != "gzip" {
		t.Fatal("gzip encoding configured but not negotiated")
	}
	zr, err := gzip.NewReader(bytes.NewReader(zipped.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, plain.Body.Bytes()) {
		t.Fatal("gzip variant decodes to different bytes than identity")
	}

	req = httptest.NewRequest(http.MethodGet, "/list", nil)
	req.Header.Set("If-None-Match", etag)
	cond := httptest.NewRecorder()
	h.ServeHTTP(cond, req)
	if cond.Code != http.StatusNotModified || cond.Body.Len() != 0 {
		t.Fatalf("revalidation: code=%d bodyBytes=%d, want 304 with empty body", cond.Code, cond.Body.Len())
	}
}
