module autowebcache

go 1.24
