module autowebcache

go 1.23
