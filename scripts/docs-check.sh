#!/usr/bin/env bash
# docs-check: the documentation suite can't rot silently.
#
#   1. Every relative markdown link in README.md and docs/*.md resolves to
#      a file or directory in the repo.
#   2. docs/METRICS.md matches the live telemetry registry
#      (cmd/metricsdoc -check).
#   3. Every Go code block in the quickstart-bearing docs still refers to
#      identifiers the package exports (spot-checked by building the repo,
#      which includes examples/ and the doc-driven tests).
#
# Run via `make docs-check`; CI runs it as the docs-check job.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. relative links resolve -------------------------------------------
echo "docs-check: resolving markdown links"
while IFS=: read -r file link; do
  # Strip anchors; keep the path part.
  path="${link%%#*}"
  [ -z "$path" ] && continue                      # pure #anchor
  case "$path" in
    http://*|https://*|mailto:*) continue ;;      # external
  esac
  dir=$(dirname "$file")
  if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
    echo "  BROKEN: $file -> $link"
    fail=1
  fi
done < <(grep -oHE '\]\(([^)]+)\)' README.md docs/*.md \
           | sed -E 's/\]\(([^)]+)\)/\1/' \
           | sed -E 's/^([^:]+):(.*)$/\1:\2/')

# --- 2. METRICS.md matches the live registry -----------------------------
echo "docs-check: verifying docs/METRICS.md against the live registry"
if ! go run ./cmd/metricsdoc -check docs/METRICS.md; then
  fail=1
fi

# --- 3. documented commands/examples still build -------------------------
echo "docs-check: building the repo (examples included)"
if ! go build ./...; then
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "docs-check: FAILED"
  exit 1
fi
echo "docs-check: ok"
