#!/usr/bin/env bash
# cluster-demo boots a 3-node RUBiS cache cluster on localhost, drives it
# with the multi-target load generator, then asserts the cluster tier's
# core guarantees from the outside — exit code 0 means they held, so CI can
# run the demo headlessly as an end-to-end smoke test:
#
#   1. the cluster served traffic with a non-zero cache hit rate, and every
#      node serves a non-empty /metrics (per-handler counters with real
#      counts, latency histograms, per-peer health) on its admin port;
#   1c. an open-loop run (fixed arrival schedule, latency measured from the
#      intended send time — free of coordinated omission) reports a p99;
#   2. a page cached on node A is HIT on re-request (local caching works);
#   2b. the serve path works end to end: a gzip-negotiated response carries
#      Content-Encoding: gzip + Vary, the page has a strong ETag, and an
#      If-None-Match revalidation answers 304 with a zero-byte body;
#   3. a write on node B removes that page from node A before the write's
#      response returns (strong cluster-wide invalidation, §3.2);
#   4. the regenerated page is visible from node C as a hit or remote-hit
#      (ownership fetch / replica offer works).
#
#   5. (SHARED_DB only) node 1's regenerated page shows the bid written on
#      node 2 — read-your-write through the one shared database, the §3.2
#      deployment the paper assumes.
#
#   6. (KILL_RESTART only) node 2 is SIGKILLed: the survivors keep serving
#      reads AND writes (the peer breaker fails fast instead of stalling),
#      the load generator degrades — per-target errors, zero for the live
#      nodes — rather than erroring out, and a restarted node 2 rejoins the
#      warm path: its cache fills again and a write on node 1 still
#      invalidates it cluster-wide.
#
#   7. (KILL_RESTART only, nodes run with a disk cache tier) node 3 is
#      SIGTERMed — the graceful path that spills the memory tier and closes
#      the journal — and restarted:
#   7a. nothing was written while it was down, so its first request for a
#      page cached before the stop is a warm HIT served from the disk tier
#      without executing the handler (zero database queries), and its
#      metrics show disk-tier promotions and restored entries;
#   7b. it is stopped again, a write on node 1 invalidates that page while
#      node 3 is down, and after the restart the rejoin gap detection must
#      quarantine-flush the warm tier (gap_flushes >= 1) so the pre-write
#      page is regenerated, never served stale from disk.
#
# Knobs: CLUSTER_DURATION (default 5s), CLUSTER_CLIENTS (default 30),
# OPENLOOP_RATE (default 200 req/s for the open-loop phase),
# MAX_BYTES (optional page-cache budget + admission filter for every node),
# SHARED_DB (path to a sqlite database file all three nodes share; empty =
# per-process in-memory databases, which exercises only the cache tier),
# KILL_RESTART (non-empty = run the kill/restart failure-domain phase).
#
# When setting MAX_BYTES, size it above the demo's working set (tens of
# MiB): assertions 2-4 require inserts and replica offers to be accepted,
# and a node at a saturated budget legitimately refuses both (admission
# duels, rejected offers) — that regime is exercised by the unit and -race
# stress tests, not by this smoke script.
set -u

DURATION="${CLUSTER_DURATION:-5s}"
CLIENTS="${CLUSTER_CLIENTS:-30}"
MAX_BYTES="${MAX_BYTES:-}"
SHARED_DB="${SHARED_DB:-}"

HTTP_PORTS=(8091 8092 8093)
PEER_PORTS=(9091 9092 9093)
METRICS_PORTS=(9191 9192 9193)

fail() { echo "cluster-demo: FAIL: $*" >&2; exit 1; }

mkdir -p bin
go build -o bin/rubis-server ./cmd/rubis-server || fail "build rubis-server"
go build -o bin/loadgen ./cmd/loadgen || fail "build loadgen"

GOVERN_FLAGS=()
if [ -n "$MAX_BYTES" ]; then
  GOVERN_FLAGS=(-max-bytes "$MAX_BYTES" -admission)
fi

DB_FLAGS=()
if [ -n "$SHARED_DB" ]; then
  rm -f "$SHARED_DB" "$SHARED_DB.lock"
  DB_FLAGS=(-db "sqlite:$SHARED_DB")
  echo "nodes share one database: $SHARED_DB"
fi

# The kill/restart phase runs every node with a disk cache tier so phase 7
# can assert warm restarts; the base phases stay memory-only.
L2_BASE=""
if [ -n "${KILL_RESTART:-}" ]; then
  L2_BASE=$(mktemp -d)
  echo "disk cache tier enabled under $L2_BASE"
fi

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null; done
  wait 2>/dev/null
  [ -n "$L2_BASE" ] && rm -rf "$L2_BASE"
}
trap cleanup EXIT

# start_node <i> boots node i in the background and records its pid in
# PIDS[i] — the kill/restart phase reuses it to bring a dead node back.
start_node() {
  local i="$1" j peers=()
  for j in 0 1 2; do
    [ "$j" != "$i" ] && peers+=("127.0.0.1:${PEER_PORTS[$j]}")
  done
  local l2flags=()
  [ -n "$L2_BASE" ] && l2flags=(-l2 "$L2_BASE/node$i")
  bin/rubis-server -addr ":${HTTP_PORTS[$i]}" \
    -listen-peer "127.0.0.1:${PEER_PORTS[$i]}" \
    -peers "$(IFS=,; echo "${peers[*]}")" \
    -metrics-listen "127.0.0.1:${METRICS_PORTS[$i]}" \
    -encodings gzip -etag \
    "${GOVERN_FLAGS[@]}" "${DB_FLAGS[@]}" "${l2flags[@]}" &
  PIDS[$i]=$!
}

# metric <admin-port> <series> prints one label-less series' value (empty if
# the series is absent).
metric() {
  curl -sf "http://127.0.0.1:$1/metrics" | awk -v m="$2" '$1==m{print $2; exit}'
}

# wait_http <port> blocks until the node on <port> answers (or fails).
wait_http() {
  local port="$1" _
  for _ in $(seq 1 150); do
    if curl -sf -o /dev/null "http://localhost:$port/"; then return 0; fi
    sleep 0.2
  done
  fail "node on :$port never became healthy"
}

for i in 0 1 2; do
  start_node "$i"
done

# Wait for all three nodes to serve.
for port in "${HTTP_PORTS[@]}"; do
  wait_http "$port"
done

echo "three nodes up; driving $CLIENTS clients for $DURATION"
LOAD_OUT=$(bin/loadgen \
  -targets "http://localhost:${HTTP_PORTS[0]},http://localhost:${HTTP_PORTS[1]},http://localhost:${HTTP_PORTS[2]}" \
  -app rubis -clients "$CLIENTS" -duration "$DURATION") || fail "loadgen exited non-zero"
echo "$LOAD_OUT"

# Assertion 1: the cluster actually cached something under load.
HIT_RATE=$(echo "$LOAD_OUT" | sed -n 's/.*hit rate \([0-9.]*\)%.*/\1/p')
[ -n "$HIT_RATE" ] || fail "could not parse hit rate from loadgen output"
case "$HIT_RATE" in
  0|0.0) fail "cluster served zero cache hits (hit rate $HIT_RATE%)" ;;
esac
echo "cluster-demo: hit rate $HIT_RATE% OK"

# Assertion 1b: every node serves a non-empty /metrics in Prometheus text
# format on its admin port — per-handler request counters with real counts
# (the load generator just hit every node) and per-peer health series.
for i in 0 1 2; do
  MURL="http://127.0.0.1:${METRICS_PORTS[$i]}/metrics"
  METRICS=$(curl -sf "$MURL") || fail "node $((i+1)) /metrics unreachable at $MURL"
  echo "$METRICS" | grep -q '^# TYPE awc_requests_total counter' \
    || fail "node $((i+1)) /metrics is missing awc_requests_total"
  echo "$METRICS" | grep '^awc_requests_total{' | grep -qv ' 0$' \
    || fail "node $((i+1)) /metrics shows zero requests after the load run"
  echo "$METRICS" | grep -q '^awc_cluster_peer_state{' \
    || fail "node $((i+1)) /metrics is missing per-peer health series"
  echo "$METRICS" | grep -q '^awc_request_duration_seconds_bucket{' \
    || fail "node $((i+1)) /metrics is missing latency histograms"
done
echo "cluster-demo: /metrics non-empty on all nodes OK"

# Assertion 1c: the open-loop mode — requests depart on a fixed arrival
# schedule and latency is measured from each request's intended send time,
# so a slow response cannot suppress the arrivals behind it (coordinated
# omission). The caches are warm from the closed-loop run; the phase must
# report its schedule and a p99 from the intended-send clock.
OL_RATE="${OPENLOOP_RATE:-200}"
echo "open-loop phase: $OL_RATE req/s fixed schedule for 2s"
OL_OUT=$(bin/loadgen \
  -targets "http://localhost:${HTTP_PORTS[0]},http://localhost:${HTTP_PORTS[1]},http://localhost:${HTTP_PORTS[2]}" \
  -app rubis -clients "$CLIENTS" -openloop -rate "$OL_RATE" -duration 2s) \
  || fail "open-loop loadgen exited non-zero"
echo "$OL_OUT"
echo "$OL_OUT" | grep -q '^open-loop: offered' \
  || fail "open-loop run did not report its arrival schedule"
OL_P99=$(echo "$OL_OUT" | sed -n 's/.*p99 \([^ ]*\).*/\1/p')
[ -n "$OL_P99" ] || fail "open-loop run did not report a p99 latency"
echo "cluster-demo: open-loop p99 $OL_P99 OK"

# outcome <url> prints the X-Autowebcache header of one request.
outcome() {
  curl -si "$1" | tr -d '\r' | awk -F': ' 'tolower($1)=="x-autowebcache"{print $2}'
}

N1="http://localhost:${HTTP_PORTS[0]}"
N2="http://localhost:${HTTP_PORTS[1]}"
N3="http://localhost:${HTTP_PORTS[2]}"
PAGE="/viewItem?itemId=7"

# Assertion 2: prime node 1, then re-request — must be a local hit. (The
# load generator has finished; nothing else touches the cluster now.)
outcome "$N1$PAGE" >/dev/null
WARM=$(outcome "$N1$PAGE")
[ "$WARM" = "hit" ] || fail "expected warm hit on node1, got '$WARM'"

# Assertion 2b: the serve path end to end, from the outside. The nodes run
# with -encodings gzip -etag, and /browseCategories (20 categories of
# repetitive HTML) is comfortably compressible, so a client that accepts
# gzip must get the once-compressed variant with the Vary marker; every
# cached page carries a strong ETag; and revalidating with that ETag must
# answer 304 with a zero-byte body.
BROWSE="/browseCategories"
curl -s -o /dev/null "$N1$BROWSE" # prime
GZ_HDRS=$(curl -s -D - -o /dev/null -H 'Accept-Encoding: gzip' "$N1$BROWSE" | tr -d '\r')
echo "$GZ_HDRS" | grep -qi '^content-encoding: gzip$' \
  || fail "gzip-accepting client was not served the gzip variant of $BROWSE"
echo "$GZ_HDRS" | grep -qi '^vary: accept-encoding$' \
  || fail "gzip response is missing Vary: Accept-Encoding"
ETAG=$(echo "$GZ_HDRS" | awk -F': ' 'tolower($1)=="etag"{print $2}')
[ -n "$ETAG" ] || fail "cached page $BROWSE carries no ETag"
COND=$(curl -s -o /dev/null -w '%{http_code} %{size_download}' \
  -H "If-None-Match: $ETAG" "$N1$BROWSE")
[ "$COND" = "304 0" ] \
  || fail "If-None-Match revalidation returned '$COND', want '304 0' (zero-byte 304)"
echo "cluster-demo: serve path OK (gzip negotiated, ETag $ETAG revalidated as zero-byte 304)"

# Assertion 3: a write on node 2 must invalidate node 1's cached page
# before the write's response returns — the next read on node 1 has to
# regenerate, not serve the pre-write page.
WRITE=$(outcome "$N2/storeBid?userId=1&itemId=7&bid=999&qty=1")
[ "$WRITE" = "write" ] || fail "expected write outcome on node2, got '$WRITE'"
AFTER=$(outcome "$N1$PAGE")
if [ "$AFTER" = "hit" ] || [ "$AFTER" = "semantic-hit" ]; then
  fail "cross-node invalidation did NOT happen: node1 served '$AFTER' after node2's write"
fi
echo "cluster-demo: cross-node invalidation OK (node1 outcome after write: $AFTER)"

# Assertion 4: node 1's regeneration re-populated the cluster (local insert
# plus replica offer to the key's owner); node 3 must see it without
# executing the handler — a local hit (node 3 owns it) or a remote hit.
VIA3=$(outcome "$N3$PAGE")
case "$VIA3" in
  hit|remote-hit) echo "cluster-demo: cross-node page visibility OK ($VIA3 on node3)" ;;
  *) fail "expected hit/remote-hit on node3, got '$VIA3'" ;;
esac

# Assertion 5: with one shared database, node 1's regenerated page must show
# node 2's bid — read-your-write through the database, across processes.
if [ -n "$SHARED_DB" ]; then
  BODY=$(curl -s "$N1$PAGE")
  echo "$BODY" | grep -q "999" \
    || fail "shared-db read-your-write failed: node1's regenerated page is missing node2's bid of 999"
  echo "cluster-demo: shared-database read-your-write OK"
fi

# Assertion 6 (KILL_RESTART): the failure-domain phase — SIGKILL node 2,
# prove the survivors degrade instead of stalling, then restart it and
# prove it rejoins the warm path.
if [ -n "${KILL_RESTART:-}" ]; then
  echo "cluster-demo: kill/restart phase: SIGKILL node2 (pid ${PIDS[1]})"
  kill -9 "${PIDS[1]}" 2>/dev/null
  wait "${PIDS[1]}" 2>/dev/null

  # 6a: with node 2 dead, the survivors keep serving reads AND writes —
  # the peer breaker turns the dead node into fast failures, not stalls.
  W=$(outcome "$N1/storeBid?userId=2&itemId=7&bid=1001&qty=1")
  case "$W" in
    write|write-degraded) ;;
    *) fail "write on node1 with node2 dead returned '$W'" ;;
  esac
  R=$(outcome "$N3$PAGE")
  [ -n "$R" ] || fail "read on node3 with node2 dead returned no outcome"
  echo "cluster-demo: survivors serve with node2 dead OK (write='$W', read='$R')"

  # 6b: the load generator pointed at all three (one dead) degrades: exit
  # 0, live targets error-free, the dead target all errors.
  DEAD_OUT=$(bin/loadgen \
    -targets "http://localhost:${HTTP_PORTS[0]},http://localhost:${HTTP_PORTS[1]},http://localhost:${HTTP_PORTS[2]}" \
    -app rubis -clients "$CLIENTS" -duration 3s) \
    || fail "loadgen must degrade, not fail, with a dead target"
  echo "$DEAD_OUT"
  DEAD_LINE=$(echo "$DEAD_OUT" | grep "target http://localhost:${HTTP_PORTS[1]}")
  [ -n "$DEAD_LINE" ] || fail "no per-target line for the dead node"
  DEAD_REQS=$(echo "$DEAD_LINE" | awk '{print $3}')
  DEAD_ERRS=$(echo "$DEAD_LINE" | awk '{print $5}')
  [ "$DEAD_REQS" -gt 0 ] || fail "dead target shown idle: $DEAD_LINE"
  [ "$DEAD_ERRS" = "$DEAD_REQS" ] || fail "dead target served requests?! $DEAD_LINE"
  LIVE_ERRS=$(echo "$DEAD_OUT" | grep "target http://localhost:${HTTP_PORTS[0]}" | awk '{print $5}')
  [ "$LIVE_ERRS" = "0" ] || fail "live node reported errors under degraded load: $LIVE_ERRS"
  echo "cluster-demo: degraded loadgen OK ($DEAD_ERRS/$DEAD_REQS dead-target errors, live nodes clean)"

  # 6c: restart node 2 and wait for it to rejoin the warm path: a page
  # cached on it is a hit, and a write on node 1 still invalidates it —
  # the survivors' probes must first revive the breaker-down peer, so
  # poll until the full warm/invalidate cycle holds.
  start_node 1
  wait_http "${HTTP_PORTS[1]}"
  REJOINED=""
  for _ in $(seq 1 40); do
    outcome "$N2$PAGE" >/dev/null
    WARM2=$(outcome "$N2$PAGE")
    W2=$(outcome "$N1/storeBid?userId=1&itemId=7&bid=1002&qty=1")
    AFTER2=$(outcome "$N2$PAGE")
    if [ "$WARM2" = "hit" ] && [ "$W2" = "write" ] \
       && [ "$AFTER2" != "hit" ] && [ "$AFTER2" != "semantic-hit" ]; then
      REJOINED=1
      break
    fi
    sleep 0.5
  done
  [ -n "$REJOINED" ] || fail "restarted node2 never rejoined the warm path (warm='$WARM2' write='$W2' after='$AFTER2')"
  echo "cluster-demo: kill/restart rejoin OK (node2 warm hit invalidated by node1's write)"

  # 7a: warm restart off the disk tier. Prime a fresh page on node 3, stop
  # it gracefully (SIGTERM spills the memory tier and closes the journal),
  # restart, and the FIRST request must be a warm hit: the page promotes
  # from disk, the handler never runs — zero database queries — and the
  # node's metrics show the promotion and the restored index.
  PAGE3="/viewItem?itemId=11"
  outcome "$N3$PAGE3" >/dev/null
  PRIMED_BODY=$(curl -s "$N3$PAGE3")
  echo "cluster-demo: warm-restart phase: SIGTERM node3 (pid ${PIDS[2]})"
  kill -TERM "${PIDS[2]}" 2>/dev/null
  wait "${PIDS[2]}" 2>/dev/null
  start_node 2
  wait_http "${HTTP_PORTS[2]}"
  WARM3=$(outcome "$N3$PAGE3")
  [ "$WARM3" = "hit" ] \
    || fail "first request after warm restart was '$WARM3', want 'hit' served from the disk tier"
  WARM_BODY=$(curl -s "$N3$PAGE3")
  [ "$WARM_BODY" = "$PRIMED_BODY" ] || fail "warm-restart body differs from the primed page"
  PROMOTED=$(metric "${METRICS_PORTS[2]}" awc_cache_l2_promotions_total)
  RESTORED=$(metric "${METRICS_PORTS[2]}" awc_cache_l2_restored_entries_total)
  [ -n "$PROMOTED" ] && [ "${PROMOTED%.*}" -gt 0 ] \
    || fail "restarted node3 reports no disk-tier promotions (got '$PROMOTED')"
  [ -n "$RESTORED" ] && [ "${RESTORED%.*}" -gt 0 ] \
    || fail "restarted node3 reports no restored disk-tier entries (got '$RESTORED')"
  echo "cluster-demo: warm restart OK (first request hit from disk, $RESTORED entries restored, zero DB queries)"

  # 7b: no stale serves after a missed write. Stop node 3 again, invalidate
  # its warm page from node 1 while it is down, restart it: the rejoin gap
  # detection must quarantine-flush the warm tier, so the pre-write page
  # can never be served stale from disk.
  echo "cluster-demo: missed-write phase: SIGTERM node3 again"
  kill -TERM "${PIDS[2]}" 2>/dev/null
  wait "${PIDS[2]}" 2>/dev/null
  W3=$(outcome "$N1/storeBid?userId=3&itemId=11&bid=2002&qty=1")
  case "$W3" in
    write|write-degraded) ;;
    *) fail "write on node1 with node3 down returned '$W3'" ;;
  esac
  start_node 2
  wait_http "${HTTP_PORTS[2]}"
  GAPPED=""
  for _ in $(seq 1 40); do
    GF=$(metric "${METRICS_PORTS[2]}" awc_cluster_gap_flushes_total)
    if [ -n "$GF" ] && [ "${GF%.*}" -ge 1 ]; then GAPPED=1; break; fi
    sleep 0.5
  done
  [ -n "$GAPPED" ] || fail "restarted node3 never quarantine-flushed after the missed write"
  STALE=$(outcome "$N3$PAGE3")
  if [ "$STALE" = "hit" ] || [ "$STALE" = "semantic-hit" ]; then
    fail "node3 served the invalidated page warm from disk after rejoin ('$STALE')"
  fi
  echo "cluster-demo: rejoin quarantine OK (gap flush $GF, post-rejoin outcome '$STALE')"
fi

echo "cluster-demo: PASS"
