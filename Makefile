GO ?= go

.PHONY: check build vet test race bench benchsmoke experiments

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -bench . -run '^$$' -benchtime 1s -benchmem .
	$(GO) run ./cmd/benchjson -out BENCH_2.json

benchsmoke:
	$(GO) test -bench 'Cache|Parallel|Coalesced|Qrcache' -run '^$$' -benchtime 100x -benchmem .

experiments:
	$(GO) run ./cmd/experiments -fast
