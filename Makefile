GO ?= go

# make bench writes this PR's benchmark record; the gate diffs a fresh run
# against the committed baseline of the previous PR.
BENCH_OUT ?= BENCH_3.json
BENCH_BASELINE ?= BENCH_2.json

# cluster-demo knobs.
CLUSTER_DURATION ?= 5s
CLUSTER_CLIENTS ?= 30

.PHONY: check ci fmtcheck build vet test race bench benchsmoke bench-gate experiments cluster-demo

check: build vet race

# ci mirrors exactly what .github/workflows/ci.yml runs: the check job
# (fmt, build, vet, race tests) plus the bench-gate job (smoke + regression
# gate against the committed baseline).
ci: fmtcheck build vet race benchsmoke bench-gate

fmtcheck:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -bench . -run '^$$' -benchtime 1s -benchmem .
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT)

benchsmoke:
	$(GO) test -bench 'Cache|Parallel|Coalesced|Qrcache' -run '^$$' -benchtime 100x -benchmem .

# bench-gate re-runs the hit-path benchmarks and fails when any tracked
# benchmark regresses >25% ns/op or allocates more per op than the
# committed baseline. The fresh record goes to a scratch file so the gate
# never dirties the committed BENCH_*.json history.
bench-gate:
	@mkdir -p bin
	$(GO) run ./cmd/benchjson -out bin/BENCH_ci.json -baseline $(BENCH_BASELINE)

experiments:
	$(GO) run ./cmd/experiments -fast

# cluster-demo boots a 3-node RUBiS cache cluster on localhost and drives
# it with the multi-target load generator (each client round-robins across
# the nodes, exercising remote fetch, replication and cluster-wide
# invalidation). Ctrl-C safe: the servers die with the recipe.
cluster-demo:
	@mkdir -p bin
	$(GO) build -o bin/rubis-server ./cmd/rubis-server
	$(GO) build -o bin/loadgen ./cmd/loadgen
	@bash -c ' \
	  bin/rubis-server -addr :8091 -listen-peer 127.0.0.1:9091 -peers 127.0.0.1:9092,127.0.0.1:9093 & P1=$$!; \
	  bin/rubis-server -addr :8092 -listen-peer 127.0.0.1:9092 -peers 127.0.0.1:9091,127.0.0.1:9093 & P2=$$!; \
	  bin/rubis-server -addr :8093 -listen-peer 127.0.0.1:9093 -peers 127.0.0.1:9091,127.0.0.1:9092 & P3=$$!; \
	  trap "kill $$P1 $$P2 $$P3 2>/dev/null" EXIT; \
	  for port in 8091 8092 8093; do \
	    for i in $$(seq 1 100); do \
	      if curl -sf -o /dev/null http://localhost:$$port/; then break; fi; sleep 0.2; \
	    done; \
	  done; \
	  echo "three nodes up; driving $(CLUSTER_CLIENTS) clients for $(CLUSTER_DURATION)"; \
	  bin/loadgen -targets http://localhost:8091,http://localhost:8092,http://localhost:8093 \
	    -app rubis -clients $(CLUSTER_CLIENTS) -duration $(CLUSTER_DURATION); \
	'
