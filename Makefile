GO ?= go

.PHONY: check build vet test race bench experiments

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -bench . -run '^$$' -benchtime 1s .

experiments:
	$(GO) run ./cmd/experiments -fast
