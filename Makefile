GO ?= go

# make bench writes this PR's benchmark record; the gate diffs a fresh run
# against the committed baseline of the previous PR.
BENCH_OUT ?= BENCH_10.json
BENCH_BASELINE ?= BENCH_9.json

# cluster-demo knobs.
CLUSTER_DURATION ?= 5s
CLUSTER_CLIENTS ?= 30

# Pinned linter versions, mirrored in .github/workflows/ci.yml.
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

# The coverage floor `make cover` (and CI) enforces on ./internal/... .
COVER_FLOOR ?= 75

# Per-target budget for `make fuzz` (the CI fuzz-smoke job).
FUZZTIME ?= 15s

.PHONY: check ci fmtcheck build vet test race bench benchsmoke bench-gate \
	experiments cluster-demo cover staticcheck govulncheck lint fuzz \
	docs-check metricsdoc api-check apidoc

check: build vet race

# ci mirrors exactly what .github/workflows/ci.yml runs: the check job
# (fmt, build, vet, lint, race tests, coverage floor) plus the bench-gate
# job (smoke + regression gate against the committed baseline). The linters
# need network access to fetch their pinned versions; on an air-gapped box
# run the individual targets you can.
ci: fmtcheck build vet lint race cover benchsmoke bench-gate docs-check api-check

fmtcheck:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# cover writes cover.out for ./internal/... and fails when total statement
# coverage drops below $(COVER_FLOOR)%. CI uploads cover.out as an artifact.
cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
	  if (t + 0 < floor + 0) { printf "coverage %.1f%% is below the %d%% floor\n", t, floor; exit 1 } \
	  printf "coverage %.1f%% meets the %d%% floor\n", t, floor }'

# lint runs both pinned linters (network required to fetch them).
lint: staticcheck govulncheck

staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

bench:
	$(GO) test -bench . -run '^$$' -benchtime 1s -benchmem .
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT)

benchsmoke:
	$(GO) test -bench 'Cache|Parallel|Coalesced|Qrcache' -run '^$$' -benchtime 100x -benchmem .

# bench-gate re-runs the hit-path benchmarks and fails when any tracked
# benchmark regresses >25% ns/op or allocates more per op than the
# committed baseline. The fresh record goes to a scratch file so the gate
# never dirties the committed BENCH_*.json history.
bench-gate:
	@mkdir -p bin
	$(GO) run ./cmd/benchjson -out bin/BENCH_ci.json -baseline $(BENCH_BASELINE)

# fuzz runs every native fuzz target for $(FUZZTIME) each: the SQL-template
# parser, the query analyzer's never-too-narrow soundness contract, and the
# cluster peer-protocol frame decoder. Seed corpora also run as plain tests
# on every `go test`.
fuzz:
	$(GO) test ./internal/sqlparser -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/analysis -run '^$$' -fuzz FuzzAnalyze -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster -run '^$$' -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME)

experiments:
	$(GO) run ./cmd/experiments -fast

# docs-check keeps the documentation suite honest: every relative markdown
# link resolves, docs/METRICS.md matches the live telemetry registry, and
# the documented examples still build. CI runs it as the docs-check job.
docs-check:
	bash scripts/docs-check.sh

# metricsdoc regenerates docs/METRICS.md from the live registry after a
# metrics change (then commit the result; docs-check diffs it).
metricsdoc:
	$(GO) run ./cmd/metricsdoc -out docs/METRICS.md

# api-check fails when the package's public surface drifts from the
# committed docs/API.md dump — API changes must land as reviewable diffs
# (the docs/METRICS.md contract, applied to the API). CI runs it in the
# docs-check job.
api-check:
	bash scripts/api-check.sh --check

# apidoc regenerates docs/API.md after an API change (then commit it).
apidoc:
	bash scripts/api-check.sh --write

# cluster-demo boots a 3-node RUBiS cache cluster on localhost, drives it
# with the multi-target load generator, and asserts the cluster tier's
# guarantees from the outside (non-zero hit rate, warm local hits, strong
# cross-node invalidation after a write, cross-node page visibility) — a
# non-zero exit means a guarantee broke, so CI runs this headlessly as the
# e2e-cluster job. Ctrl-C safe: the servers die with the script.
cluster-demo:
	CLUSTER_DURATION=$(CLUSTER_DURATION) CLUSTER_CLIENTS=$(CLUSTER_CLIENTS) \
	  bash scripts/cluster-demo.sh
