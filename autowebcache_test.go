package autowebcache_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"autowebcache"
)

// buildApp creates a one-table application against the runtime's conn.
func buildApp(t *testing.T, conn autowebcache.Conn) []autowebcache.HandlerInfo {
	t.Helper()
	list := func(w http.ResponseWriter, r *http.Request) {
		rows, err := conn.Query(r.Context(), "SELECT id, note FROM notes ORDER BY id ASC")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
		for i := 0; i < rows.Len(); i++ {
			fmt.Fprintf(w, "%d: %s\n", rows.Int(i, 0), rows.Str(i, 1))
		}
	}
	add := func(w http.ResponseWriter, r *http.Request) {
		if _, err := conn.Exec(r.Context(), "INSERT INTO notes (note) VALUES (?)", r.URL.Query().Get("note")); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}
	return []autowebcache.HandlerInfo{
		{Name: "List", Path: "/list", Fn: list},
		{Name: "Add", Path: "/add", Write: true, Fn: add},
	}
}

func newDB(t *testing.T) *autowebcache.DB {
	t.Helper()
	db := autowebcache.NewDB()
	if err := db.CreateTable(autowebcache.TableSpec{
		Name: "notes",
		Columns: []autowebcache.Column{
			{Name: "id", Type: autowebcache.TypeInt, AutoIncrement: true},
			{Name: "note", Type: autowebcache.TypeString},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func get(t *testing.T, h http.Handler, target string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, target, nil))
	return rr
}

func TestFacadeEndToEnd(t *testing.T) {
	db := newDB(t)
	rt, err := autowebcache.New(db, autowebcache.Config{Strategy: autowebcache.ExtraQuery})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.Weave(buildApp(t, rt.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	get(t, h, "/add?note=hello")
	first := get(t, h, "/list")
	second := get(t, h, "/list")
	if first.Body.String() != second.Body.String() {
		t.Fatal("cached page differs")
	}
	if rt.Cache().Stats().Hits != 1 {
		t.Fatalf("cache stats: %+v", rt.Cache().Stats())
	}
	get(t, h, "/add?note=world")
	third := get(t, h, "/list")
	if third.Body.String() == second.Body.String() {
		t.Fatal("stale page served after write")
	}
	if want := "1: hello\n2: world\n"; third.Body.String() != want {
		t.Fatalf("page: %q", third.Body.String())
	}
}

func TestFacadeDisabled(t *testing.T) {
	db := newDB(t)
	rt, err := autowebcache.New(db, autowebcache.Config{Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Cache() != nil {
		t.Fatal("disabled runtime should have no cache")
	}
	h, err := rt.Weave(buildApp(t, rt.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	rr := get(t, h, "/list")
	if rr.Code != http.StatusOK {
		t.Fatalf("status: %d", rr.Code)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := autowebcache.New(nil, autowebcache.Config{}); err == nil {
		t.Fatal("expected error for nil db")
	}
	db := newDB(t)
	if _, err := autowebcache.New(db, autowebcache.Config{MaxEntries: -1}); err == nil {
		t.Fatal("expected error for negative capacity")
	}
}

func TestFacadeQueryCache(t *testing.T) {
	db := newDB(t)
	rt, err := autowebcache.New(db, autowebcache.Config{QueryCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.QueryCache() == nil {
		t.Fatal("query cache not built")
	}
	h, err := rt.Weave(buildApp(t, rt.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	get(t, h, "/add?note=a")
	get(t, h, "/list")
	get(t, h, "/add?note=b") // invalidates page AND result set
	third := get(t, h, "/list")
	if want := "1: a\n2: b\n"; third.Body.String() != want {
		t.Fatalf("stale page through stacked caches: %q", third.Body.String())
	}
	qs := rt.QueryCache().Stats()
	if qs.Misses == 0 {
		t.Fatalf("query cache unused: %+v", qs)
	}
}

func TestFacadeBoundedCache(t *testing.T) {
	db := newDB(t)
	rt, err := autowebcache.New(db, autowebcache.Config{MaxEntries: 2, Replacement: autowebcache.FIFO})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.Weave(buildApp(t, rt.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct query strings create distinct page keys.
	for i := 0; i < 5; i++ {
		get(t, h, fmt.Sprintf("/list?v=%d", i))
	}
	if n := rt.Cache().Len(); n > 2 {
		t.Fatalf("cache exceeded capacity: %d", n)
	}
}

func TestFacadeByteGovernance(t *testing.T) {
	db := newDB(t)
	rt, err := autowebcache.New(db, autowebcache.Config{
		MaxBytes:        4096,
		Admission:       true,
		QueryCache:      true,
		QueryCacheBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.Weave(buildApp(t, rt.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	get(t, h, "/add?note=hello")
	for i := 0; i < 20; i++ {
		get(t, h, fmt.Sprintf("/list?v=%d", i))
	}
	cs := rt.Cache().Stats()
	if cs.Bytes <= 0 || cs.Bytes > 4096 {
		t.Fatalf("page cache bytes %d outside (0, 4096]: %+v", cs.Bytes, cs)
	}
	qs := rt.QueryCache().Stats()
	if qs.Bytes < 0 || qs.Bytes > 4096 {
		t.Fatalf("query cache bytes %d outside [0, 4096]: %+v", qs.Bytes, qs)
	}
	// Admission without any byte budget is a configuration error, not a
	// no-op.
	if _, err := autowebcache.New(db, autowebcache.Config{Admission: true}); err == nil {
		t.Fatal("Admission without a byte budget must be rejected")
	}
	// Admission scoped to the one governed tier is fine: here only the
	// query cache has a budget.
	if _, err := autowebcache.New(db, autowebcache.Config{
		QueryCache: true, QueryCacheBytes: 4096, Admission: true,
	}); err != nil {
		t.Fatalf("query-cache-only admission rejected: %v", err)
	}
}

func TestParseByteSize(t *testing.T) {
	cases := map[string]int64{
		"":       0,
		"0":      0,
		"1024":   1024,
		"64k":    64 << 10,
		"64kb":   64 << 10,
		"64KiB":  64 << 10,
		"8m":     8 << 20,
		"8MB":    8 << 20,
		"8mib":   8 << 20,
		"2g":     2 << 30,
		"2GiB":   2 << 30,
		" 16 m ": 16 << 20,
	}
	for in, want := range cases {
		got, err := autowebcache.ParseByteSize(in)
		if err != nil {
			t.Errorf("ParseByteSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"x", "-1", "1.5m", "mm", "12q", "18014398509481985k", "9223372036854775807g"} {
		if _, err := autowebcache.ParseByteSize(bad); err == nil {
			t.Errorf("ParseByteSize(%q) succeeded", bad)
		}
	}
}

// TestClusterConfigValidation covers Runtime.Cluster's configuration error
// paths: every rejected shape must fail loudly instead of silently running
// unclustered (or half-clustered).
func TestClusterConfigValidation(t *testing.T) {
	db := newDB(t)
	rt, err := autowebcache.New(db, autowebcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.Weave(buildApp(t, rt.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}

	// Empty config: clustering off, nil node, no error.
	node, err := rt.Cluster(h, autowebcache.ClusterConfig{})
	if err != nil || node != nil {
		t.Fatalf("empty cluster config: node=%v err=%v, want nil/nil", node, err)
	}

	// Peers without ListenPeer is a misconfiguration, not silence.
	if _, err := rt.Cluster(h, autowebcache.ClusterConfig{Peers: []string{"127.0.0.1:9"}}); err == nil {
		t.Fatal("Peers without ListenPeer accepted")
	}

	// An unknown invalidation mode is rejected before any socket opens.
	if _, err := rt.Cluster(h, autowebcache.ClusterConfig{
		ListenPeer: "127.0.0.1:0", Invalidation: "eventually",
	}); err == nil {
		t.Fatal("bad invalidation mode accepted")
	}

	// The Disabled (baseline) configuration cannot cluster: there is no
	// cache to keep consistent.
	rtOff, err := autowebcache.New(newDB(t), autowebcache.Config{Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	hOff, err := rtOff.Weave(buildApp(t, rtOff.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtOff.Cluster(hOff, autowebcache.ClusterConfig{ListenPeer: "127.0.0.1:0"}); err == nil {
		t.Fatal("clustering a Disabled runtime accepted")
	}

	// An unroutable listen with peers configured must error (ring identity
	// would silently disagree across nodes otherwise).
	if _, err := rt.Cluster(h, autowebcache.ClusterConfig{
		ListenPeer: ":0", Peers: []string{"127.0.0.1:9"},
	}); err == nil {
		t.Fatal("unroutable ring identity accepted")
	}
}

// TestFacadeFragments drives fragment-granular caching through the public
// API: a fragmented handler with a personalised hole, enabled by
// Rules.Fragments.
func TestFacadeFragments(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec(t.Context(), "INSERT INTO notes (note) VALUES (?)", "shared"); err != nil {
		t.Fatal(err)
	}
	rt, err := autowebcache.New(db, autowebcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn := rt.Conn()
	frag := autowebcache.Segment{ID: "notes", Gen: func(w http.ResponseWriter, r *http.Request) {
		rows, err := conn.Query(r.Context(), "SELECT note FROM notes ORDER BY id ASC")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for i := 0; i < rows.Len(); i++ {
			fmt.Fprintf(w, "[%s]", rows.Str(i, 0))
		}
	}}
	hole := autowebcache.Segment{Gen: func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "(user %s)", r.URL.Query().Get("u"))
	}}
	handlers := []autowebcache.HandlerInfo{
		{Name: "Page", Path: "/page", Fragments: []autowebcache.Segment{frag, hole}},
		buildApp(t, conn)[1], // the Add write
	}
	h, err := rt.Weave(handlers, autowebcache.Rules{Fragments: true})
	if err != nil {
		t.Fatal(err)
	}
	if rr := get(t, h, "/page?u=alice"); rr.Header().Get("X-Autowebcache") != "miss" {
		t.Fatalf("cold outcome %q", rr.Header().Get("X-Autowebcache"))
	}
	rr := get(t, h, "/page?u=bob")
	if got := rr.Header().Get("X-Autowebcache"); got != "fragment-hit" {
		t.Fatalf("warm outcome %q, want fragment-hit", got)
	}
	if body := rr.Body.String(); body != "[shared](user bob)" {
		t.Fatalf("assembled body %q", body)
	}
	// The write invalidates the fragment; the next assembly regenerates.
	if rr := get(t, h, "/add?note=two"); rr.Code != http.StatusOK {
		t.Fatalf("add: %d", rr.Code)
	}
	rr = get(t, h, "/page?u=carol")
	if got := rr.Header().Get("X-Autowebcache"); got != "miss" {
		t.Fatalf("post-write outcome %q, want miss", got)
	}
	if body := rr.Body.String(); body != "[shared][two](user carol)" {
		t.Fatalf("post-write body %q", body)
	}
}

// TestFacadeTieredWarmRestart drives the disk tier end to end through the
// façade: a runtime with PageCache.L2Path spills its pages on Close, and a
// fresh runtime over the same directory serves the first request straight
// from the store — proven by pointing it at an EMPTY database, which the
// warm hit must never touch. A write then invalidates the promoted page and
// the regenerated body reflects the new database, not the old cache.
func TestFacadeTieredWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := autowebcache.Config{
		Strategy:  autowebcache.ExtraQuery,
		PageCache: autowebcache.PageCacheConfig{L2Path: dir, L2MaxBytes: 1 << 20},
	}

	rt, err := autowebcache.New(newDB(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.Weave(buildApp(t, rt.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	get(t, h, "/add?note=hello")
	warmBody := get(t, h, "/list").Body.String()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over an empty database: the page must come back warm.
	rt2, err := autowebcache.New(newDB(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	h2, err := rt2.Weave(buildApp(t, rt2.Conn()), autowebcache.Rules{})
	if err != nil {
		t.Fatal(err)
	}
	rr := get(t, h2, "/list")
	if rr.Header().Get("X-Autowebcache") != "hit" {
		t.Fatalf("restart outcome %q, want hit (served from the disk tier)", rr.Header().Get("X-Autowebcache"))
	}
	if rr.Body.String() != warmBody {
		t.Fatalf("warm body %q, want %q", rr.Body.String(), warmBody)
	}
	st := rt2.Cache().Stats()
	if st.Promotions == 0 || st.L2.RestoredEntries == 0 {
		t.Fatalf("warm serve did not come through the store: %+v", st)
	}

	// A write invalidates the promoted page; the regenerated body reads the
	// (empty, then one-row) new database — never the pre-restart cache.
	get(t, h2, "/add?note=fresh")
	rr = get(t, h2, "/list")
	if rr.Header().Get("X-Autowebcache") != "miss" {
		t.Fatalf("post-write outcome %q, want miss", rr.Header().Get("X-Autowebcache"))
	}
	if want := "1: fresh\n"; rr.Body.String() != want {
		t.Fatalf("post-write body %q, want %q", rr.Body.String(), want)
	}
}
