// rubis-bidding drives the RUBiS auction site under its bidding mix (85%
// reads) against both configurations of the paper's Fig. 13 — the uncached
// baseline and AutoWebCache — and prints the response-time comparison plus
// the per-interaction hit rates of Fig. 16.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"autowebcache"
	"autowebcache/internal/rubis"
	"autowebcache/internal/workload"
)

func main() {
	scale := rubis.DefaultScale()
	const clients = 200

	type outcome struct {
		label string
		res   workload.Result
	}
	var outcomes []outcome
	for _, cached := range []bool{false, true} {
		db := autowebcache.NewDB()
		lastDate, err := rubis.Load(db, scale)
		if err != nil {
			log.Fatal(err)
		}
		// Simulated database service time: 60us base per read, 40us per
		// write, 2us per row visited (cf. DESIGN.md substitutions).
		db.SetLatency(60*time.Microsecond, 40*time.Microsecond)
		db.SetRowCost(2 * time.Microsecond)
		rt, err := autowebcache.New(db, autowebcache.Config{Disabled: !cached})
		if err != nil {
			log.Fatal(err)
		}
		app := rubis.New(rt.Conn(), scale, lastDate)
		woven, err := rt.Weave(app.Handlers(), autowebcache.Rules{})
		if err != nil {
			log.Fatal(err)
		}
		res := workload.Run(context.Background(), woven, rubis.BiddingMix(scale), woven.Stats(),
			workload.Config{
				Clients:         clients,
				ThinkTime:       time.Millisecond,
				WarmupRequests:  8000,
				MeasureRequests: 12000,
				Seed:            1,
			})
		label := "No cache    "
		if cached {
			label = "AutoWebCache"
		}
		outcomes = append(outcomes, outcome{label, res})
		if cached {
			fmt.Printf("\nPer-interaction hit rates (cf. paper Fig. 16, %d clients):\n", clients)
			for _, is := range res.PerInteraction {
				if is.Writes > 0 {
					continue
				}
				fmt.Printf("  %-26s %5.1f%% hit rate over %4d requests (avg %v)\n",
					is.Name, 100*is.HitRate(), is.Requests, is.MeanResponse().Round(time.Microsecond))
			}
			fmt.Printf("overall hit rate: %.1f%% (paper: 54%%)\n", 100*res.Totals.HitRate())
		}
	}
	fmt.Printf("\nResponse time, bidding mix, %d clients (cf. paper Fig. 13):\n", clients)
	for _, o := range outcomes {
		fmt.Printf("  %s  mean %8v   throughput %7.0f req/s\n",
			o.label, o.res.Totals.MeanResponse().Round(time.Microsecond), o.res.ThroughputRPS)
	}
	base := outcomes[0].res.Totals.MeanResponse()
	awc := outcomes[1].res.Totals.MeanResponse()
	if base > 0 {
		fmt.Printf("  improvement: %.0f%% (paper: up to 64%%)\n", 100*(1-float64(awc)/float64(base)))
	}
}
