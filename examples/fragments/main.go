// Fragment-granular (ESI-style) caching: one personalised region no longer
// makes a whole page uncacheable. A product page is decomposed into an
// ordered template of cacheable fragments — each with its own cache key,
// vary dimensions and dependency set — plus an uncacheable hole for the
// "signed in as" banner. Different users then SHARE every fragment and only
// the hole regenerates, while a write still invalidates exactly the
// fragment whose queries it intersects.
//
// Run with: go run ./examples/fragments
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"

	"autowebcache"
)

func main() {
	db := autowebcache.NewDB()
	for _, spec := range []autowebcache.TableSpec{
		{Name: "products", Columns: []autowebcache.Column{
			{Name: "id", Type: autowebcache.TypeInt, AutoIncrement: true},
			{Name: "name", Type: autowebcache.TypeString},
			{Name: "price", Type: autowebcache.TypeInt},
		}},
		{Name: "reviews", Columns: []autowebcache.Column{
			{Name: "id", Type: autowebcache.TypeInt, AutoIncrement: true},
			{Name: "product_id", Type: autowebcache.TypeInt},
			{Name: "text", Type: autowebcache.TypeString},
		}, Indexed: []string{"product_id"}},
	} {
		if err := db.CreateTable(spec); err != nil {
			log.Fatal(err)
		}
	}
	ctx := context.Background()
	if _, err := db.Exec(ctx, "INSERT INTO products (name, price) VALUES (?, ?)", "widget", 42); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(ctx, "INSERT INTO reviews (product_id, text) VALUES (?, ?)", 1, "great"); err != nil {
		log.Fatal(err)
	}

	rt, err := autowebcache.New(db, autowebcache.Config{})
	if err != nil {
		log.Fatal(err)
	}
	conn := rt.Conn()

	// The page template: [details fragment][greeting hole][reviews fragment].
	// The fragments vary by the product id only — the user parameter is NOT
	// part of their keys — so every signed-in user shares them.
	details := autowebcache.Segment{ID: "details", Vary: []string{"id"}, Gen: func(w http.ResponseWriter, r *http.Request) {
		id, _ := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
		rows, err := conn.Query(r.Context(), "SELECT name, price FROM products WHERE id = ?", id)
		if err != nil || rows.Len() == 0 {
			http.Error(w, "no such product", http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "<h1>%s</h1><p>price %d</p>", rows.Str(0, 0), rows.Int(0, 1))
	}}
	greeting := autowebcache.Segment{Gen: func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "<p>signed in as %s</p>", r.URL.Query().Get("user"))
	}}
	reviews := autowebcache.Segment{ID: "reviews", Vary: []string{"id"}, Gen: func(w http.ResponseWriter, r *http.Request) {
		id, _ := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
		rows, err := conn.Query(r.Context(), "SELECT text FROM reviews WHERE product_id = ?", id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "<ul>")
		for i := 0; i < rows.Len(); i++ {
			fmt.Fprintf(w, "<li>%s</li>", rows.Str(i, 0))
		}
		fmt.Fprintf(w, "</ul>")
	}}

	handlers := []autowebcache.HandlerInfo{
		{Name: "Product", Path: "/product",
			Fragments: []autowebcache.Segment{details, greeting, reviews}},
		{Name: "Review", Path: "/review", Write: true, Fn: func(w http.ResponseWriter, r *http.Request) {
			if _, err := conn.Exec(r.Context(),
				"INSERT INTO reviews (product_id, text) VALUES (?, ?)",
				1, r.URL.Query().Get("text")); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			fmt.Fprintln(w, "thanks")
		}},
	}
	h, err := rt.Weave(handlers, autowebcache.Rules{Fragments: true})
	if err != nil {
		log.Fatal(err)
	}

	show := func(target string) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, target, nil))
		fmt.Printf("%-34s -> %-12s fragments=%-4s cached-bytes=%-4s %s\n",
			target,
			rr.Header().Get("X-Autowebcache"),
			rr.Header().Get("X-Autowebcache-Fragments"),
			rr.Header().Get("X-Autowebcache-Cached-Bytes"),
			rr.Body.String())
	}

	show("/product?id=1&user=alice") // miss: every fragment generated + cached
	show("/product?id=1&user=bob")   // fragment-hit: bob shares alice's fragments
	show("/review?text=solid")       // write: invalidates ONLY the reviews fragment
	show("/product?id=1&user=carol") // assembled: details from cache, reviews regenerated
	show("/product?id=1&user=dave")  // fragment-hit again

	st := rt.Cache().Stats()
	fmt.Printf("\ncache: %d entries, %d hits, %d inserts, %d invalidations\n",
		st.Entries, st.Hits, st.Inserts, st.Invalidations)
}
