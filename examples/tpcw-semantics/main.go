// tpcw-semantics demonstrates the paper's application-semantics
// optimisation (§4.3, Fig. 15): TPC-W's BestSellers interaction is allowed
// to serve data up to 30 seconds stale (TPC-W v1.8 clauses 3.1.4.1 and
// 6.3.3.1), so marking it cacheable for that window converts its expensive
// aggregation misses into semantic hits.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"autowebcache"
	"autowebcache/internal/tpcw"
	"autowebcache/internal/workload"
)

func main() {
	scale := tpcw.DefaultScale()
	const clients = 150

	type config struct {
		label  string
		cached bool
		window time.Duration
	}
	configs := []config{
		{"No cache              ", false, 0},
		{"AutoWebCache          ", true, 0},
		{"AutoWebCache+Semantics", true, 30 * time.Second},
	}
	fmt.Printf("TPC-W shopping mix, %d clients (cf. paper Fig. 15):\n", clients)
	for _, cfg := range configs {
		db := autowebcache.NewDB()
		lastDate, err := tpcw.Load(db, scale)
		if err != nil {
			log.Fatal(err)
		}
		db.SetLatency(60*time.Microsecond, 40*time.Microsecond)
		db.SetRowCost(2 * time.Microsecond)
		rt, err := autowebcache.New(db, autowebcache.Config{Disabled: !cfg.cached})
		if err != nil {
			log.Fatal(err)
		}
		app := tpcw.New(rt.Conn(), scale, lastDate)
		woven, err := rt.Weave(app.Handlers(), tpcw.WeaveRules(cfg.window))
		if err != nil {
			log.Fatal(err)
		}
		res := workload.Run(context.Background(), woven, tpcw.ShoppingMix(scale), woven.Stats(),
			workload.Config{
				Clients:         clients,
				ThinkTime:       time.Millisecond,
				WarmupRequests:  5000,
				MeasureRequests: 10000,
				Seed:            4,
			})
		fmt.Printf("  %s  mean %9v  hit rate %5.1f%%\n",
			cfg.label, res.Totals.MeanResponse().Round(time.Microsecond), 100*res.Totals.HitRate())
		if cfg.cached {
			for _, is := range res.PerInteraction {
				if is.Name == "BestSellers" {
					fmt.Printf("      BestSellers: %d requests, %d hits, %d semantic hits, %d misses (avg %v)\n",
						is.Requests, is.Hits, is.SemanticHits, is.Misses, is.MeanResponse().Round(time.Microsecond))
				}
			}
		}
	}
	fmt.Println("\nThe semantic window converts BestSellers' expensive aggregation misses")
	fmt.Println("into hits that strong consistency alone cannot provide, because ongoing")
	fmt.Println("orders keep invalidating the page (paper: most BestSellers hits were")
	fmt.Println("'obtained using a 30 second window for invalidation').")
}
