// weak-consistency contrasts strong consistency (AutoWebCache's
// contribution) with the time-lagged TTL consistency of prior systems the
// paper discusses in §8 (e.g. CachePortal): under TTL caching a page can be
// stale for up to the timeout; under strong consistency every read after a
// write sees the new data.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"autowebcache"
	"autowebcache/internal/weave"
)

func build(disabled bool, rules autowebcache.Rules) (http.Handler, *autowebcache.Runtime) {
	db := autowebcache.NewDB()
	if err := db.CreateTable(autowebcache.TableSpec{
		Name: "stock",
		Columns: []autowebcache.Column{
			{Name: "id", Type: autowebcache.TypeInt, AutoIncrement: true},
			{Name: "product", Type: autowebcache.TypeString},
			{Name: "units", Type: autowebcache.TypeInt},
		},
	}); err != nil {
		log.Fatal(err)
	}
	rt, err := autowebcache.New(db, autowebcache.Config{Disabled: disabled})
	if err != nil {
		log.Fatal(err)
	}
	conn := rt.Conn()
	handlers := []autowebcache.HandlerInfo{
		{
			Name: "Stock", Path: "/stock",
			Fn: func(w http.ResponseWriter, r *http.Request) {
				rows, err := conn.Query(r.Context(), "SELECT product, units FROM stock ORDER BY id ASC")
				if err != nil {
					http.Error(w, err.Error(), 500)
					return
				}
				for i := 0; i < rows.Len(); i++ {
					fmt.Fprintf(w, "%s: %d units\n", rows.Str(i, 0), rows.Int(i, 1))
				}
			},
		},
		{
			Name: "Restock", Path: "/restock", Write: true,
			Fn: func(w http.ResponseWriter, r *http.Request) {
				q := r.URL.Query()
				if _, err := conn.Exec(r.Context(), "INSERT INTO stock (product, units) VALUES (?, ?)",
					q.Get("product"), q.Get("units")); err != nil {
					http.Error(w, err.Error(), 500)
					return
				}
				fmt.Fprintln(w, "ok")
			},
		},
	}
	h, err := rt.Weave(handlers, rules)
	if err != nil {
		log.Fatal(err)
	}
	return h, rt
}

func get(h http.Handler, target string) (string, string) {
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, target, nil))
	return rr.Body.String(), rr.Header().Get(weave.HeaderOutcome)
}

func main() {
	// Strong consistency: the default weave. Writes invalidate immediately.
	strong, _ := build(false, autowebcache.Rules{})
	get(strong, "/restock?product=anvil&units=3")
	get(strong, "/stock") // prime the cache
	get(strong, "/restock?product=anvil&units=9")
	body, outcome := get(strong, "/stock")
	fmt.Println("strong consistency after write:")
	fmt.Printf("  outcome=%s\n%s", outcome, indent(body))

	// Time-lagged (TTL) consistency: the page is declared fresh for 2s via
	// a semantic rule, so the write is not reflected until the window ends.
	ttl, _ := build(false, autowebcache.Rules{
		Semantic: map[string]time.Duration{"Stock": 2 * time.Second},
	})
	get(ttl, "/restock?product=anvil&units=3")
	get(ttl, "/stock") // prime
	get(ttl, "/restock?product=anvil&units=9")
	body, outcome = get(ttl, "/stock")
	fmt.Println("TTL (time-lagged) consistency right after write:")
	fmt.Printf("  outcome=%s (stale!)\n%s", outcome, indent(body))
	time.Sleep(2100 * time.Millisecond)
	body, outcome = get(ttl, "/stock")
	fmt.Println("TTL consistency after the window expires:")
	fmt.Printf("  outcome=%s\n%s", outcome, indent(body))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				lines = append(lines, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
