// Quickstart: add AutoWebCache to a tiny guestbook application in ~100
// lines. The handlers contain no caching code at all — the cache is woven
// around them, and writes invalidate exactly the pages they affect.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"autowebcache"
)

func main() {
	// 1. A database with one table.
	db := autowebcache.NewDB()
	if err := db.CreateTable(autowebcache.TableSpec{
		Name: "entries",
		Columns: []autowebcache.Column{
			{Name: "id", Type: autowebcache.TypeInt, AutoIncrement: true},
			{Name: "author", Type: autowebcache.TypeString},
			{Name: "message", Type: autowebcache.TypeString},
		},
		Indexed: []string{"author"},
	}); err != nil {
		log.Fatal(err)
	}

	// 2. A runtime: analysis engine + page cache + recording connection.
	rt, err := autowebcache.New(db, autowebcache.Config{Strategy: autowebcache.ExtraQuery})
	if err != nil {
		log.Fatal(err)
	}
	conn := rt.Conn() // handlers query through this

	// 3. Ordinary handlers, no caching code anywhere.
	handlers := []autowebcache.HandlerInfo{
		{
			Name: "Guestbook", Path: "/guestbook",
			Fn: func(w http.ResponseWriter, r *http.Request) {
				author := r.URL.Query().Get("author")
				rows, err := conn.Query(r.Context(),
					"SELECT id, message FROM entries WHERE author = ? ORDER BY id ASC", author)
				if err != nil {
					http.Error(w, err.Error(), 500)
					return
				}
				fmt.Fprintf(w, "Messages from %s:\n", author)
				for i := 0; i < rows.Len(); i++ {
					fmt.Fprintf(w, "  %d. %s\n", rows.Int(i, 0), rows.Str(i, 1))
				}
			},
		},
		{
			Name: "Sign", Path: "/sign", Write: true,
			Fn: func(w http.ResponseWriter, r *http.Request) {
				q := r.URL.Query()
				if _, err := conn.Exec(r.Context(),
					"INSERT INTO entries (author, message) VALUES (?, ?)",
					q.Get("author"), q.Get("message")); err != nil {
					http.Error(w, err.Error(), 500)
					return
				}
				fmt.Fprintln(w, "signed!")
			},
		},
	}

	// 4. Weave the caching aspect around the handlers.
	app, err := rt.Weave(handlers, autowebcache.Rules{})
	if err != nil {
		log.Fatal(err)
	}

	// Drive it in-process to show what happens.
	get := func(target string) string {
		rr := httptest.NewRecorder()
		app.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, target, nil))
		return rr.Header().Get("X-Autowebcache")
	}
	get("/sign?author=ada&message=hello")
	fmt.Println("first view of ada's page:  ", get("/guestbook?author=ada")) // miss
	fmt.Println("second view of ada's page: ", get("/guestbook?author=ada")) // hit
	fmt.Println("first view of bob's page:  ", get("/guestbook?author=bob")) // miss
	get("/sign?author=ada&message=again")
	// The write touched only ada's rows: her page is invalidated, bob's
	// page survives (the AC-extraQuery precision).
	fmt.Println("ada's page after her write:", get("/guestbook?author=ada"))   // miss
	fmt.Println("bob's page after ada's write:", get("/guestbook?author=bob")) // hit
	fmt.Printf("cache stats: %+v\n", rt.Cache().Stats())
}
