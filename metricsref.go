package autowebcache

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// MetricsReference renders docs/METRICS.md: the full reference of every
// series a fully-wired process exports, generated from the live registry so
// the document cannot drift from the code. It boots a throwaway in-memory
// stack — memdb runtime with the query cache, a woven two-handler app, and
// a loopback single-node cluster — watches it all from one Admin, and
// tabulates Families().
//
// cmd/metricsdoc writes (or, with -check, verifies) the file, and
// TestMetricsReferenceCurrent keeps the committed copy in sync.
func MetricsReference() (string, error) {
	db := NewDB()
	if err := db.CreateTable(TableSpec{
		Name: "notes",
		Columns: []Column{
			{Name: "id", Type: TypeInt, AutoIncrement: true},
			{Name: "note", Type: TypeString},
		},
	}); err != nil {
		return "", err
	}
	rt, err := New(db, Config{
		QueryCache:      true,
		MaxBytes:        1 << 20,
		QueryCacheBytes: 1 << 20,
		Admission:       true,
	})
	if err != nil {
		return "", err
	}
	defer rt.Close()
	noop := func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }
	woven, err := rt.Weave([]HandlerInfo{
		{Name: "Read", Path: "/read", Fn: noop},
		{Name: "Write", Path: "/write", Write: true, Fn: noop},
	}, Rules{})
	if err != nil {
		return "", err
	}
	node, err := rt.Cluster(woven, ClusterConfig{
		ListenPeer:    "127.0.0.1:0",
		ProbeInterval: -1, // no background probes in a doc build
	})
	if err != nil {
		return "", err
	}
	defer node.Close()

	admin := NewAdmin().Watch(rt, woven, node)
	return renderMetricsReference(admin.Families()), nil
}

// metricGroups partitions the reference table by name prefix, in document
// order.
var metricGroups = []struct {
	title  string
	prefix string
}{
	{"Application (weave layer)", "awc_request"},
	{"Application (weave layer), continued", "awc_"},
	{"Cache tiers", "awc_cache_"},
	{"Cluster", "awc_cluster_"},
	{"Process runtime", ""},
}

func renderMetricsReference(fams []MetricFamily) string {
	var b strings.Builder
	b.WriteString(`# Metrics reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: go run ./cmd/metricsdoc -out docs/METRICS.md
     Verified by `)
	b.WriteString("`make docs-check` and `TestMetricsReferenceCurrent`. -->\n\n")
	b.WriteString(`Every series below is exported on ` + "`GET /metrics`" + ` (Prometheus text
format 0.0.4) by a fully-wired process: woven application, page cache,
query-result cache and cluster node, all watched by one ` + "`Admin`" + `. A
process without some layer (no query cache, no cluster) simply omits that
layer's families. The help strings name the internal statistic each series
mirrors — ` + "`/metrics`" + ` and ` + "`/statsz`" + ` read the same snapshots and can
never disagree.

Conventions: every cache-specific series is prefixed ` + "`awc_`" + `; counters
end in ` + "`_total`" + `, histograms in ` + "`_duration_seconds`" + ` (exported as
` + "`_bucket`/`_sum`/`_count`" + ` with cumulative ` + "`le`" + ` buckets), gauges in
neither. The ` + "`cache`" + ` label separates the page tier (` + "`page`" + `) from the
back-end result tier (` + "`query`" + `); ` + "`segment`" + ` splits occupancy between the
` + "`probation`" + ` and ` + "`protected`" + ` LRU segments.

`)

	seen := make(map[string]bool)
	grouped := make([][]MetricFamily, len(metricGroups))
	for gi, g := range metricGroups {
		for _, f := range fams {
			if seen[f.Name] || !strings.HasPrefix(f.Name, g.prefix) {
				continue
			}
			// The app layer is "awc_ minus awc_cache_/awc_cluster_": handled
			// by claiming the cache/cluster prefixes later only if the
			// broader awc_ group skips them first.
			if g.prefix == "awc_" &&
				(strings.HasPrefix(f.Name, "awc_cache_") || strings.HasPrefix(f.Name, "awc_cluster_")) {
				continue
			}
			if g.prefix == "awc_request" && !strings.HasPrefix(f.Name, "awc_request") {
				continue
			}
			seen[f.Name] = true
			grouped[gi] = append(grouped[gi], f)
		}
	}
	// Fold the two app partitions into one section, sorted by name.
	app := append(grouped[0], grouped[1]...)
	sort.Slice(app, func(i, j int) bool { return app[i].Name < app[j].Name })
	sections := []struct {
		title string
		fams  []MetricFamily
	}{
		{"Application (weave layer)", app},
		{"Cache tiers", grouped[2]},
		{"Cluster", grouped[3]},
		{"Process runtime", grouped[4]},
	}

	for _, sec := range sections {
		if len(sec.fams) == 0 {
			continue
		}
		fmt.Fprintf(&b, "## %s\n\n", sec.title)
		b.WriteString("| Series | Type | Labels | Unit | Mirrors / meaning |\n")
		b.WriteString("|---|---|---|---|---|\n")
		for _, f := range sec.fams {
			labels := strings.Join(f.Labels, ", ")
			if labels == "" {
				labels = "—"
			}
			fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s |\n",
				f.Name, f.Type, labels, metricUnit(f.Name), f.Help)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// metricUnit derives the unit column from the series name, per the naming
// convention.
func metricUnit(name string) string {
	switch {
	case strings.Contains(name, "_seconds"):
		return "seconds"
	case strings.Contains(name, "bytes"):
		return "bytes"
	case strings.HasSuffix(name, "_total"):
		return "count"
	default:
		return "count"
	}
}
